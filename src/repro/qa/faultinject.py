"""Fault injection for the process-parallel backend.

The parallel backend promises lossless degradation: whatever goes wrong in
the pool — a worker raising mid-chunk, shared memory failing to allocate,
a hung worker — the caller still gets the bit-identical serial result.
This module makes those failures reproducible on demand.

Faults are described by the ``REPRO_FAULTS`` environment variable so they
propagate to worker processes under both ``fork`` and ``spawn`` start
methods.  The spec is a comma-separated list of ``site[:arg]`` entries:

``worker.crash``
    Every chunk raises :class:`InjectedWorkerCrash` in the worker.
``worker.crash:K``
    Only chunks whose first source id is ≥ ``K`` crash — some chunks
    succeed first, exercising the mid-computation degradation path.
``worker.hang:SECONDS``
    Each chunk sleeps ``SECONDS`` before computing; combined with the
    backend's ``timeout`` this simulates a stuck worker.
``worker.hang:SECONDS@K``
    Only chunks whose first source id is ≥ ``K`` sleep — the other
    chunks finish on time, which makes the delayed chunk a *straggler*
    rather than a uniform slowdown (the contrast the critical-path
    analyzer's straggler detector keys on).
``shm.oom``
    Shared-memory segment creation raises ``OSError`` (allocation
    failure), exercising the constructor's serial fallback.

:mod:`repro.hetero.parallel` calls :func:`fire` at its seams only when
``REPRO_FAULTS`` is set, so production runs pay a single environment
lookup.  Tests use the context managers, which set and restore the
variable.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

__all__ = [
    "ENV_VAR",
    "InjectedFault",
    "InjectedWorkerCrash",
    "parse_spec",
    "fire",
    "inject",
    "inject_worker_crash",
    "inject_worker_hang",
    "inject_shm_failure",
]

ENV_VAR = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """Base class for injected failures (distinguishable from real bugs)."""


class InjectedWorkerCrash(InjectedFault):
    """A worker was told to die mid-chunk."""


def parse_spec(spec: str) -> list[tuple[str, str | None]]:
    """``"worker.crash:8,shm.oom"`` → ``[("worker.crash", "8"), ("shm.oom", None)]``."""
    out: list[tuple[str, str | None]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        site, _, arg = part.partition(":")
        out.append((site, arg or None))
    return out


def fire(seam: str, first_source: int | None = None) -> None:
    """Raise/delay according to ``REPRO_FAULTS`` if it targets ``seam``.

    ``seam`` is ``"worker.chunk"`` (inside a worker, before computing a
    chunk) or ``"shm.create"`` (parent, before allocating segments).
    """
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return
    for site, arg in parse_spec(spec):
        if seam == "worker.chunk" and site == "worker.hang":
            seconds, _, floor = (arg or "").partition("@")
            if floor and (first_source is None or first_source < int(floor)):
                continue
            _emit_fired(seam, site, arg, first_source)
            time.sleep(float(seconds) if seconds else 60.0)
        elif seam == "worker.chunk" and site == "worker.crash":
            if arg is None or first_source is None or first_source >= int(arg):
                _emit_fired(seam, site, arg, first_source)
                raise InjectedWorkerCrash(
                    f"injected crash on chunk starting at source {first_source}"
                )
        elif seam == "shm.create" and site == "shm.oom":
            _emit_fired(seam, site, arg, first_source)
            raise OSError(28, "injected shared-memory allocation failure")


def _emit_fired(
    seam: str, site: str, arg: str | None, first_source: int | None
) -> None:
    """Publish a ``fault.fired`` event *before* the fault acts.

    Emitted first on purpose: a hang or crash must not be able to
    suppress its own evidence, so the stream always shows which injected
    fault a degradation or stall traces back to.
    """
    from ..obs import events as _events

    if _events.enabled():
        _events.emit(
            "fault.fired", seam=seam, site=site, arg=arg, first_source=first_source
        )


@contextmanager
def inject(spec: str):
    """Set ``REPRO_FAULTS`` to ``spec`` for the duration of the block."""
    prev = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = spec
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = prev


def inject_worker_crash(from_source: int | None = None):
    """Crash every chunk, or only those starting at ``from_source`` or later."""
    spec = "worker.crash" if from_source is None else f"worker.crash:{from_source}"
    return inject(spec)


def inject_worker_hang(seconds: float, from_source: int | None = None):
    """Hang every chunk, or only those starting at ``from_source`` or later.

    The targeted form turns one chunk into a straggler while its siblings
    run clean — the minimal reproducible input for straggler detection.
    """
    spec = f"worker.hang:{seconds}"
    if from_source is not None:
        spec += f"@{from_source}"
    return inject(spec)


def inject_shm_failure():
    """Fail shared-memory segment allocation in the parent."""
    return inject("shm.oom")
