"""Scenario-matrix runner: execute configs, gate SLOs, feed the ledger.

One scenario run is: build the graph → arm the structured event stream →
(optionally) arm fault injection → drive the configured algorithm through
the existing engine/hetero runners → replay a query load against the
reduced distance oracle → read the merged stream back → extract latency
distributions → judge them against the scenario's budgets.

Everything downstream of the run is plumbing the rest of ``repro.obs``
already provides: the per-scenario :class:`~repro.obs.ledger.RunRecord`
carries the SLO verdict (``meta.scenario`` / ``meta.slo_verdict`` — the
longitudinal filter keys), the tail percentiles land in the record's
``phases`` so :mod:`repro.obs.regress` gates p99 drift exactly like
median drift, and the events/ledger pair is what ``repro-bench report``
renders into the SLO panel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..obs import events as _events
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.events import EventLog, events_to
from ..obs.slo import (
    LatencyStats,
    SLOReport,
    evaluate,
    extract_exemplars,
    extract_latencies,
    percentile,
)
from .config import ScenarioConfig

__all__ = ["ScenarioResult", "run_scenario", "run_matrix", "render_matrix"]

_C_RUNS = _metrics.counter("scenario.runs")
_C_VIOLATIONS = _metrics.counter("scenario.violations")
_C_QUERIES = _metrics.counter("scenario.queries")

#: Tail statistics recorded as ledger phases per budgeted metric — the
#: names carry the ``.p99``/``.p999`` markers the regression gate treats
#: as tail-latency phases.
_LEDGER_STATS = ("p50", "p99", "p999")


@dataclass
class ScenarioResult:
    """One executed scenario: measurements + verdicts + provenance."""

    config: ScenarioConfig
    seconds: float
    stats: dict[str, LatencyStats]
    slo: SLOReport
    events_dir: str
    n_events: int
    record: "object | None" = None  # RunRecord when a ledger was given
    critpath: "dict | None" = None  # compact critical-path summary

    @property
    def ok(self) -> bool:
        return self.slo.ok

    @property
    def verdict(self) -> str:
        return self.slo.verdict


def _run_queries(g, load, rng) -> None:
    """Serve the query load against the reduced oracle, one event per query.

    Singles are timed individually (``query.finish``: the honest per-query
    latency distribution, jitter included); batches go through the
    vectorized ``query_many`` (``query_batch.finish``: the bulk-serving
    figure ROADMAP item 1 tracks).  Singles landing above the configured
    ``exemplar_percentile`` of this run's own distribution are explained
    (:meth:`~repro.apsp.reduced_oracle.ReducedDistanceOracle.explain`) and
    emitted as ``kind="exemplar"`` events carrying the full provenance —
    the "10 slowest queries and why" the SLO panel renders.
    """
    from ..apsp.reduced_oracle import ReducedDistanceOracle

    oracle = ReducedDistanceOracle(g)
    n = g.n
    if n == 0:
        return
    samples: list[tuple[int, int, int, int]] = []  # (dur_ns, u, v, qid)
    for qid, (u, v) in enumerate(rng.integers(0, n, size=(load.count, 2))):
        t0 = time.perf_counter_ns()
        oracle.query(int(u), int(v))
        dur = time.perf_counter_ns() - t0
        # Vertex endpoints travel as src/dst: ``v`` would collide with the
        # event envelope's schema-version key.
        _events.emit("query.finish", dur_ns=dur, src=int(u), dst=int(v), qid=qid)
        samples.append((dur, int(u), int(v), qid))
    _C_QUERIES.inc(load.count)
    k = getattr(load, "exemplar_k", 10)
    if samples and k > 0:
        cut = percentile(
            [float(d) for d, _, _, _ in samples],
            getattr(load, "exemplar_percentile", 99.0),
        )
        tail = sorted(
            (s for s in samples if s[0] >= cut), key=lambda s: -s[0]
        )[:k]
        for rank, (dur, u, v, qid) in enumerate(tail, start=1):
            rec = oracle.explain(u, v)
            _events.emit(
                "exemplar",
                metric="query",
                dur_ns=dur,
                rank=rank,
                src=u,
                dst=v,
                qid=qid,
                pair_class=rec.pair_class,
                resolver=rec.resolver,
                component=rec.component,
                boundary_aps=(
                    list(rec.boundary_aps) if rec.boundary_aps else None
                ),
                digest=rec.digest(),
            )
    for _ in range(load.batches):
        pairs = rng.integers(0, n, size=(load.batch, 2), dtype=np.int64)
        t0 = time.perf_counter_ns()
        oracle.query_many(pairs)
        _events.emit(
            "query_batch.finish",
            dur_ns=time.perf_counter_ns() - t0,
            pairs=int(load.batch),
        )
        _C_QUERIES.inc(load.batch)


def _run_algorithm(cfg: ScenarioConfig, g) -> None:
    if cfg.algorithm == "apsp":
        from ..hetero.apsp_runner import apsp_with_trace

        apsp_with_trace(g, chunk_size=cfg.chunk_size)
    elif cfg.algorithm == "mcb":
        from ..hetero.mcb_runner import mcb_with_trace

        mcb_with_trace(g)
    else:  # sssp
        sources = np.arange(g.n, dtype=np.int64)
        if cfg.workers >= 2:
            from ..hetero.parallel import ParallelEngine

            with ParallelEngine(
                g, workers=cfg.workers, chunk_size=cfg.chunk_size
            ) as eng:
                eng.multi_source(sources)
        else:
            from ..sssp.engine import multi_source

            if g.n:
                multi_source(g, sources, chunk_size=cfg.chunk_size)


def run_scenario(
    cfg: ScenarioConfig,
    events_dir: str | Path,
    ledger=None,
) -> ScenarioResult:
    """Execute one scenario and judge its SLOs.

    ``events_dir`` receives this scenario's per-pid JSONL shards (one
    directory per scenario — the matrix runner namespaces them).  With a
    :class:`~repro.obs.ledger.Ledger`, a ``kind="scenario"`` record is
    appended whose meta carries ``scenario`` / ``slo_verdict`` and whose
    phases include the tail percentiles for the regression gate.
    """
    from ..qa.faultinject import inject

    _C_RUNS.inc()
    g = cfg.graph.build()
    rng = np.random.default_rng(cfg.queries.seed if cfg.queries else 0)
    events_dir = str(events_dir)
    t0 = time.perf_counter()
    # The whole scenario runs under its own trace collector so the
    # critical-path analyzer can attribute the wall time afterwards —
    # same spans the profile command records, scoped per scenario.
    with events_to(events_dir) as sink, _trace.tracing() as tr:
        fault_ctx = inject(cfg.faults) if cfg.faults else None
        try:
            if fault_ctx is not None:
                fault_ctx.__enter__()
            for _ in range(cfg.repeats):
                with _events.emitting(
                    "scenario", scenario=cfg.name, algorithm=cfg.algorithm
                ):
                    _run_algorithm(cfg, g)
        finally:
            if fault_ctx is not None:
                fault_ctx.__exit__(None, None, None)
        # The query load runs outside the fault window: it measures
        # serving latency of the surviving oracle, not the fault itself.
        if cfg.queries is not None and (cfg.queries.count or cfg.queries.batches):
            _run_queries(g, cfg.queries, rng)
    seconds = time.perf_counter() - t0

    log = EventLog(sink.dir)
    events = log.read()
    from ..obs.critpath import analyze_collector

    critpath = analyze_collector(tr, events=events).summary_dict()
    latencies = extract_latencies(events)
    report = evaluate(latencies, list(cfg.slo))
    top_k = cfg.queries.exemplar_k if cfg.queries is not None else 10
    report.exemplars = extract_exemplars(events, top_k=top_k)
    if not report.ok:
        _C_VIOLATIONS.inc()

    record = None
    if ledger is not None:
        from ..obs.ledger import RunRecord

        phases = {f"scenario.{cfg.name}.wall": seconds}
        for metric, st in report.stats.items():
            for stat in _LEDGER_STATS:
                phases[f"scenario.{cfg.name}.{metric}.{stat}"] = st.value(stat)
        record = ledger.append(
            RunRecord.new(
                kind="scenario",
                phases=phases,
                counters={
                    "scenario.events": len(events),
                    "scenario.event_lines_skipped": log.skipped,
                },
                meta={
                    "scenario": cfg.name,
                    "slo_verdict": report.verdict,
                    "slo": report.as_dict(),
                    "algorithm": cfg.algorithm,
                    "graph": cfg.graph.describe(),
                    "workers": cfg.workers,
                    "faults": cfg.faults,
                    "repeats": cfg.repeats,
                    "events_dir": str(Path(events_dir).resolve()),
                    "critpath": critpath,
                },
                exemplars=[ex.as_dict() for ex in report.exemplars],
            )
        )
    return ScenarioResult(
        config=cfg,
        seconds=seconds,
        stats=report.stats,
        slo=report,
        events_dir=events_dir,
        n_events=len(events),
        record=record,
        critpath=critpath,
    )


def run_matrix(
    configs: list[ScenarioConfig],
    events_root: str | Path,
    ledger=None,
) -> list[ScenarioResult]:
    """Run every scenario, each into its own event directory.

    Scenarios are independent by construction (fresh graph, fresh event
    dir, env-scoped faults), so a violated budget never stops the matrix —
    the caller inspects the results and exits once, with every verdict on
    the table.
    """
    root = Path(events_root)
    results = []
    for cfg in configs:
        results.append(run_scenario(cfg, root / cfg.name, ledger=ledger))
    return results


def render_matrix(results: list[ScenarioResult]) -> str:
    """Terminal summary table: one row per scenario, verdicts last."""
    from ..bench.reporting import format_table

    rows = []
    for r in results:
        q = r.stats.get("query")
        rows.append(
            (
                r.config.name,
                r.config.algorithm,
                r.config.graph.describe()[:28],
                r.config.faults or "-",
                f"{r.seconds:.3f}",
                f"{q.p99 * 1e3:.3f}" if q is not None else "-",
                r.n_events,
                r.verdict.upper() if r.verdict != "ok" else "ok",
            )
        )
    return format_table(
        ["scenario", "algo", "graph", "faults", "wall (s)", "query p99 ms",
         "events", "slo"],
        rows,
        title=f"scenario matrix — {len(results)} scenario(s)",
    )
