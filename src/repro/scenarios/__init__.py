"""Deadline-driven scenario harness (ROADMAP item 5).

Declarative scenario configs (:mod:`repro.scenarios.config`), a builtin
library spanning the adversarial graph families
(:mod:`repro.scenarios.library`), and the matrix runner that executes
them through the real engine/hetero runners and judges the resulting
latency distributions against declared SLO budgets
(:mod:`repro.scenarios.runner` + :mod:`repro.obs.slo`).
"""

from .config import (
    ALGORITHMS,
    GRAPH_FAMILIES,
    GraphSpec,
    QueryLoad,
    ScenarioConfig,
    ScenarioError,
    load_config,
)
from .library import BUILTIN_SPECS, builtin_scenarios, get_scenario, scenario_names
from .runner import ScenarioResult, render_matrix, run_matrix, run_scenario

__all__ = [
    "ALGORITHMS",
    "GRAPH_FAMILIES",
    "GraphSpec",
    "QueryLoad",
    "ScenarioConfig",
    "ScenarioError",
    "load_config",
    "BUILTIN_SPECS",
    "builtin_scenarios",
    "get_scenario",
    "scenario_names",
    "ScenarioResult",
    "render_matrix",
    "run_matrix",
    "run_scenario",
]
