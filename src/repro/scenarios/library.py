"""Built-in scenario library spanning the ``qa.strategies`` families.

These are the named workloads ``repro-bench scenarios`` runs without a
config file: one clean pipeline per family archetype, a fault-injected
parallel dispatch, and a deadline-driven query-serving scenario.  Budgets
are deliberately generous (seconds-scale on millisecond workloads) — the
library's job is to exercise the harness end to end on any host; tight
budgets belong in purpose-written configs (see ``examples/``).

Every scenario here is a plain dict run through the same
:class:`~repro.scenarios.config.ScenarioConfig` validation as user
configs, so the library doubles as a living schema example.
"""

from __future__ import annotations

from .config import ScenarioConfig, ScenarioError

__all__ = ["BUILTIN_SPECS", "builtin_scenarios", "get_scenario", "scenario_names"]

#: Generous default budgets for library scenarios: wide enough that a
#: loaded CI host passes, present so the SLO plumbing always exercises.
_WIDE_PHASE = [
    {"metric": "phase.apsp.process", "p99_s": 60.0},
]
_WIDE_QUERY = [
    {"metric": "query", "p99_ms": 250.0, "jitter_iqr_ms": 250.0},
]

BUILTIN_SPECS: tuple[dict, ...] = (
    {
        "name": "clean-theta-apsp",
        "description": "chain-heavy theta graph through the full APSP "
                       "pipeline with a per-query serving load",
        "graph": {"family": "theta", "args": {"n_chains": 4, "chain_len": 14}},
        "algorithm": "apsp",
        "queries": {"count": 300, "batch": 64, "batches": 4, "seed": 1},
        "slo": _WIDE_PHASE + _WIDE_QUERY,
    },
    {
        "name": "cactus-mcb",
        "description": "cactus graph (one BCC per cycle) through the MCB "
                       "pipeline",
        "graph": {"family": "cactus", "args": {"n_cycles": 5, "cycle_len": 5}},
        "algorithm": "mcb",
        "slo": [{"metric": "phase.mcb.process", "p99_s": 60.0}],
    },
    {
        "name": "bridge-sssp-serial",
        "description": "bridge-heavy graph through the chunked bulk-SSSP "
                       "engine, serial",
        "graph": {"family": "bridge_heavy", "args": {"n_blocks": 5, "block_size": 5}},
        "algorithm": "sssp",
        "chunk_size": 8,
        "slo": [{"metric": "chunk", "p99_s": 30.0, "jitter_range_s": 30.0}],
    },
    {
        "name": "hairball-apsp",
        "description": "random multigraph (parallel edges, self-loops) "
                       "through APSP",
        "graph": {"family": "hairball", "args": {"n": 10, "m": 28}},
        "algorithm": "apsp",
        "queries": {"count": 150, "seed": 3},
        "slo": _WIDE_PHASE + _WIDE_QUERY,
    },
    {
        "name": "disconnected-apsp",
        "description": "disconnected parts + isolated vertices (infinite "
                       "distances on the query path)",
        "graph": {"family": "disconnected",
                  "args": {"n_parts": 3, "part_size": 6, "isolated": 2}},
        "algorithm": "apsp",
        "queries": {"count": 150, "seed": 4},
        "slo": _WIDE_QUERY,
    },
    {
        "name": "star-of-cycles-mcb-ties",
        "description": "tie-heavy star-of-cycles through MCB (equal-weight "
                       "cycle tie-breaking under timing)",
        "graph": {"family": "star_of_cycles", "args": {"arms": 4, "cycle_len": 5},
                  "reweight": "ties"},
        "algorithm": "mcb",
        "slo": [{"metric": "phase.mcb.process", "p99_s": 60.0}],
    },
    {
        "name": "fault-crash-parallel",
        "description": "parallel bulk-SSSP with injected worker crashes: "
                       "measures the latency cost of lossless degradation",
        "graph": {"family": "grid", "args": {"rows": 8, "cols": 8}},
        "algorithm": "sssp",
        "workers": 2,
        "faults": "worker.crash:8",
        "slo": [{"metric": "dispatch", "p99_s": 120.0}],
    },
    {
        "name": "tight-deadline-query",
        "description": "deadline-driven oracle serving: every query carries "
                       "a per-sample deadline and a miss-fraction budget",
        "graph": {"family": "theta", "args": {"n_chains": 3, "chain_len": 20}},
        "algorithm": "apsp",
        "queries": {"count": 500, "seed": 5},
        "slo": [
            {"metric": "query", "p99_ms": 250.0, "deadline_ms": 400.0,
             "miss_frac": 0.05},
        ],
    },
)


def builtin_scenarios() -> list[ScenarioConfig]:
    """Every library scenario, validated (the library can never drift)."""
    return [ScenarioConfig.from_dict(dict(spec)) for spec in BUILTIN_SPECS]


def scenario_names() -> list[str]:
    return [str(spec["name"]) for spec in BUILTIN_SPECS]


def get_scenario(name: str) -> ScenarioConfig:
    for spec in BUILTIN_SPECS:
        if spec["name"] == name:
            return ScenarioConfig.from_dict(dict(spec))
    raise ScenarioError(
        f"unknown builtin scenario {name!r}; known: {', '.join(scenario_names())}"
    )
