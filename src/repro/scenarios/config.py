"""Declarative scenario configs: graph × algorithm × mix × faults × load.

A scenario is one named, fully reproducible workload description.  The
five axes mirror the heterogeneous story of the paper and the fault
matrix of :mod:`repro.qa`:

* **graph family** — one of the :mod:`repro.qa.strategies` adversarial
  families (plus ``grid``/``gnm`` generators and named Table-1
  ``dataset`` stand-ins), with generator args and a seed;
* **algorithm** — ``apsp`` / ``mcb`` pipeline drivers or the bare
  ``sssp`` bulk engine;
* **worker/device mix** — ``workers: 0`` runs serial, ``>= 2`` engages
  the process-parallel backend (sssp only; the pipelines drive their own
  chunking);
* **fault profile** — a ``REPRO_FAULTS`` spec string
  (:mod:`repro.qa.faultinject`), so fault injection gets a latency-impact
  story;
* **query load** — point-to-point queries against the reduced distance
  oracle, timed per query (the ROADMAP item-1 serving benchmark).

Configs load from JSON always and TOML where :mod:`tomllib` exists
(Python ≥ 3.11); validation is eager and names the offending key, so a
typo fails at load time with a message, never mid-matrix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.slo import SLOBudget, parse_budgets

__all__ = [
    "ScenarioError",
    "GRAPH_FAMILIES",
    "ALGORITHMS",
    "GraphSpec",
    "QueryLoad",
    "ScenarioConfig",
    "load_config",
]

#: Query-count hard cap: per-query events must stay far inside the event
#: stream's per-shard backstop (``MAX_EVENTS_PER_SHARD``).
MAX_QUERIES = 50_000

ALGORITHMS = ("apsp", "mcb", "sssp")


class ScenarioError(ValueError):
    """A scenario config that cannot be interpreted."""


def _families() -> dict:
    """Graph-family name → generator (lazy to keep import cost off the CLI)."""
    from ..graph.generators import gnm_random_graph, grid_graph
    from ..qa import strategies as qs

    return {
        "theta": qs.theta_graph,
        "cactus": qs.cactus_graph,
        "bridge_heavy": qs.bridge_heavy_graph,
        "hairball": qs.parallel_hairball,
        "disconnected": qs.disconnected_graph,
        "star_of_cycles": qs.star_of_cycles,
        "grid": grid_graph,
        "gnm": gnm_random_graph,
    }


#: The loadable family names (``dataset`` additionally names Table-1
#: stand-ins by their dataset name).
GRAPH_FAMILIES = (
    "theta", "cactus", "bridge_heavy", "hairball", "disconnected",
    "star_of_cycles", "grid", "gnm", "dataset",
)

_REWEIGHT_MODES = ("ties", "few", "near-zero")


@dataclass(frozen=True)
class GraphSpec:
    """One reproducible graph: family + generator args + optional reweight."""

    family: str
    args: dict = field(default_factory=dict)
    seed: int = 0
    reweight: str | None = None

    @classmethod
    def from_dict(cls, doc: dict) -> "GraphSpec":
        if not isinstance(doc, dict):
            raise ScenarioError(f"graph spec must be an object, got {doc!r}")
        unknown = set(doc) - {"family", "args", "seed", "reweight"}
        if unknown:
            raise ScenarioError(
                f"graph spec: unknown key(s) {sorted(unknown)}; "
                "accepted: family, args, seed, reweight"
            )
        family = doc.get("family")
        if family not in GRAPH_FAMILIES:
            raise ScenarioError(
                f"graph family {family!r} unknown; one of {GRAPH_FAMILIES}"
            )
        args = doc.get("args") or {}
        if not isinstance(args, dict):
            raise ScenarioError("graph args must be an object")
        reweight = doc.get("reweight")
        if reweight is not None and reweight not in _REWEIGHT_MODES:
            raise ScenarioError(
                f"reweight {reweight!r} unknown; one of {_REWEIGHT_MODES}"
            )
        return cls(
            family=family,
            args=dict(args),
            seed=int(doc.get("seed", 0)),
            reweight=reweight,
        )

    def build(self):
        """Generate the graph (deterministic in the spec)."""
        from ..qa.strategies import reweighted

        if self.family == "dataset":
            from .. import datasets

            name = self.args.get("name")
            if not name:
                raise ScenarioError("dataset graph spec needs args.name")
            g = datasets.load(name, self.args.get("scale"))
        else:
            gen = _families()[self.family]
            kwargs = dict(self.args)
            if self.family not in ("grid",):  # grid_graph takes no seed
                kwargs.setdefault("seed", self.seed)
            try:
                g = gen(**kwargs)
            except TypeError as exc:
                raise ScenarioError(
                    f"graph family {self.family!r} rejected args {kwargs}: {exc}"
                ) from exc
        if self.reweight:
            g = reweighted(g, self.reweight, seed=self.seed)
        return g

    def describe(self) -> str:
        bits = [self.family]
        if self.args:
            bits.append(",".join(f"{k}={v}" for k, v in sorted(self.args.items())))
        if self.reweight:
            bits.append(self.reweight)
        return ":".join(bits)


@dataclass(frozen=True)
class QueryLoad:
    """Point-to-point oracle queries: ``count`` singles + optional batches."""

    count: int = 0
    batch: int = 0       # 0 = no batched query_many passes
    batches: int = 0     # how many query_many calls of size ``batch``
    seed: int = 0
    #: Single-query samples above this percentile of the run's own latency
    #: distribution become tail exemplars (explained + emitted as
    #: ``kind="exemplar"`` events).  ``exemplar_k`` caps how many; 0 off.
    exemplar_percentile: float = 99.0
    exemplar_k: int = 10

    @classmethod
    def from_dict(cls, doc: dict) -> "QueryLoad":
        if not isinstance(doc, dict):
            raise ScenarioError(f"queries spec must be an object, got {doc!r}")
        unknown = set(doc) - {
            "count", "batch", "batches", "seed",
            "exemplar_percentile", "exemplar_k",
        }
        if unknown:
            raise ScenarioError(
                f"queries spec: unknown key(s) {sorted(unknown)}; "
                "accepted: count, batch, batches, seed, "
                "exemplar_percentile, exemplar_k"
            )
        count = int(doc.get("count", 0))
        batch = int(doc.get("batch", 0))
        batches = int(doc.get("batches", 0))
        if count < 0 or batch < 0 or batches < 0:
            raise ScenarioError("queries: count/batch/batches must be >= 0")
        if count + batch * batches > MAX_QUERIES:
            raise ScenarioError(
                f"queries: total load {count + batch * batches} exceeds "
                f"the {MAX_QUERIES} cap (event-stream backstop)"
            )
        pct = float(doc.get("exemplar_percentile", 99.0))
        if not 0.0 <= pct <= 100.0:
            raise ScenarioError("queries: exemplar_percentile outside [0, 100]")
        k = int(doc.get("exemplar_k", 10))
        if k < 0:
            raise ScenarioError("queries: exemplar_k must be >= 0")
        return cls(
            count=count,
            batch=batch,
            batches=batches,
            seed=int(doc.get("seed", 0)),
            exemplar_percentile=pct,
            exemplar_k=k,
        )


_SCENARIO_KEYS = {
    "name", "description", "graph", "algorithm", "workers", "chunk_size",
    "faults", "queries", "slo", "repeats",
}

#: Fault sites ``repro.qa.faultinject.fire`` actually honours.  Kept here
#: (not in faultinject) because the env-var path deliberately ignores
#: unknown tokens, while declarative configs reject them at load time.
KNOWN_FAULT_SITES = ("worker.crash", "worker.hang", "shm.oom")


@dataclass(frozen=True)
class ScenarioConfig:
    """One validated scenario; the unit the matrix runner executes."""

    name: str
    graph: GraphSpec
    algorithm: str = "apsp"
    workers: int = 0
    chunk_size: int | None = None
    faults: str | None = None
    queries: QueryLoad | None = None
    slo: tuple[SLOBudget, ...] = ()
    repeats: int = 1
    description: str = ""

    @classmethod
    def from_dict(cls, doc: dict) -> "ScenarioConfig":
        if not isinstance(doc, dict):
            raise ScenarioError(f"scenario must be an object, got {doc!r}")
        unknown = set(doc) - _SCENARIO_KEYS
        if unknown:
            raise ScenarioError(
                f"scenario: unknown key(s) {sorted(unknown)}; "
                f"accepted: {sorted(_SCENARIO_KEYS)}"
            )
        name = doc.get("name")
        if not isinstance(name, str) or not name:
            raise ScenarioError("scenario missing 'name'")
        if "graph" not in doc:
            raise ScenarioError(f"scenario {name!r} missing 'graph'")
        algorithm = doc.get("algorithm", "apsp")
        if algorithm not in ALGORITHMS:
            raise ScenarioError(
                f"scenario {name!r}: algorithm {algorithm!r} unknown; "
                f"one of {ALGORITHMS}"
            )
        workers = int(doc.get("workers", 0))
        if workers < 0:
            raise ScenarioError(f"scenario {name!r}: workers must be >= 0")
        if workers and algorithm != "sssp":
            raise ScenarioError(
                f"scenario {name!r}: workers require algorithm 'sssp' "
                "(the pipelines drive their own chunking)"
            )
        faults = doc.get("faults") or None
        if faults is not None:
            from ..qa.faultinject import parse_spec

            if not isinstance(faults, str) or not parse_spec(faults):
                raise ScenarioError(
                    f"scenario {name!r}: faults must be a REPRO_FAULTS spec "
                    "string like 'worker.crash:8' or 'worker.hang:0.5'"
                )
            # parse_spec itself accepts any site token (the env var is a
            # free-form escape hatch); configs are validated strictly so a
            # typo'd site fails at load instead of silently never firing.
            for site, _arg in parse_spec(faults):
                if site not in KNOWN_FAULT_SITES:
                    raise ScenarioError(
                        f"scenario {name!r}: unknown fault site {site!r} in "
                        f"REPRO_FAULTS spec; known sites: "
                        f"{', '.join(KNOWN_FAULT_SITES)}"
                    )
        repeats = int(doc.get("repeats", 1))
        if repeats < 1:
            raise ScenarioError(f"scenario {name!r}: repeats must be >= 1")
        try:
            slo = tuple(parse_budgets(doc.get("slo") or []))
        except ValueError as exc:
            raise ScenarioError(f"scenario {name!r}: {exc}") from exc
        return cls(
            name=name,
            graph=GraphSpec.from_dict(doc["graph"]),
            algorithm=algorithm,
            workers=workers,
            chunk_size=(
                int(doc["chunk_size"]) if doc.get("chunk_size") is not None else None
            ),
            faults=faults,
            queries=(
                QueryLoad.from_dict(doc["queries"]) if doc.get("queries") else None
            ),
            slo=slo,
            repeats=repeats,
            description=str(doc.get("description", "")),
        )


def load_config(path) -> list[ScenarioConfig]:
    """Load one config file into a scenario list (the matrix).

    Accepts a single scenario object, a bare list, or a
    ``{"scenarios": [...]}`` document.  ``.toml`` files parse via
    :mod:`tomllib` where available (Python ≥ 3.11) and raise a clear
    :class:`ScenarioError` elsewhere; everything else parses as JSON.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario config {path}: {exc}") from exc
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py3.10 only
            raise ScenarioError(
                "TOML scenario configs need Python >= 3.11 (tomllib); "
                "use the JSON form on this interpreter"
            ) from exc
        try:
            doc = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
    if isinstance(doc, dict) and "scenarios" in doc:
        doc = doc["scenarios"]
    if isinstance(doc, dict):
        doc = [doc]
    if not isinstance(doc, list) or not doc:
        raise ScenarioError(
            f"{path}: expected a scenario object, a list, or "
            "{'scenarios': [...]} with at least one entry"
        )
    out = [ScenarioConfig.from_dict(entry) for entry in doc]
    names = [c.name for c in out]
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise ScenarioError(f"{path}: duplicate scenario name(s) {sorted(dupes)}")
    return out
