"""Dense Floyd–Warshall APSP (naive vectorized and cache-blocked).

The Floyd–Warshall family is the classical GPU APSP baseline the related
work builds on (Buluc et al. [5], Matsumoto et al. [28], Katz et al. [23]).
We provide the straightforward vectorized form and the three-phase blocked
(tiled) form those papers use for cache/shared-memory locality.
"""

from __future__ import annotations

import numpy as np

from ..graph.builders import to_adjacency
from ..graph.csr import CSRGraph

__all__ = ["floyd_warshall", "blocked_floyd_warshall"]


def _init_matrix(g: CSRGraph) -> np.ndarray:
    d = to_adjacency(g, absent=np.inf)
    np.fill_diagonal(d, 0.0)
    return d


def floyd_warshall(g: CSRGraph) -> np.ndarray:
    """Textbook Floyd–Warshall, one vectorized rank-1 min-plus per pivot."""
    d = _init_matrix(g)
    n = g.n
    for k in range(n):
        # d = min(d, d[:, k] + d[k, :]) without allocating n² temporaries
        # more than once per pivot.
        np.minimum(d, d[:, k : k + 1] + d[k : k + 1, :], out=d)
    return d


def blocked_floyd_warshall(g: CSRGraph, block: int = 64) -> np.ndarray:
    """Tiled Floyd–Warshall (the [5]/[28] cache-blocking scheme).

    Processes ``block × block`` tiles in the dependent / row-col /
    independent phase order; identical output to :func:`floyd_warshall`.
    """
    d = _init_matrix(g)
    n = g.n
    if n == 0:
        return d
    nb = (n + block - 1) // block

    def tile(i: int, j: int) -> tuple[slice, slice]:
        return (
            slice(i * block, min((i + 1) * block, n)),
            slice(j * block, min((j + 1) * block, n)),
        )

    for kb in range(nb):
        krange = slice(kb * block, min((kb + 1) * block, n))
        # Phase 1: the diagonal tile, dependent on itself.
        dk = d[krange, krange]
        for k in range(dk.shape[0]):
            np.minimum(dk, dk[:, k : k + 1] + dk[k : k + 1, :], out=dk)
        # Phase 2: row and column panels of the pivot block.
        for jb in range(nb):
            if jb == kb:
                continue
            r, c = tile(kb, jb)
            panel = d[r, c]
            for k in range(dk.shape[0]):
                np.minimum(panel, dk[:, k : k + 1] + panel[k : k + 1, :], out=panel)
            r, c = tile(jb, kb)
            panel = d[r, c]
            for k in range(dk.shape[0]):
                np.minimum(panel, panel[:, k : k + 1] + dk[k : k + 1, :], out=panel)
        # Phase 3: all remaining tiles via the updated panels.
        for ib in range(nb):
            if ib == kb:
                continue
            ri, _ = tile(ib, 0)
            left = d[ri, krange]
            for jb in range(nb):
                if jb == kb:
                    continue
                _, cj = tile(0, jb)
                top = d[krange, cj]
                np.minimum(d[ri, cj], _minplus(left, top), out=d[ri, cj])
    return d


def _minplus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Min-plus product ``min_k a[i,k] + b[k,j]`` via broadcasting."""
    return np.min(a[:, :, None] + b[None, :, :], axis=1)
