"""Vectorized bulk point-to-point queries over block-cut decompositions.

Both distance oracles (:class:`repro.apsp.DistanceOracle` and
:class:`repro.apsp.ReducedDistanceOracle`) answer a single ``d(u, v)``
through the same three-way classification: *same component* (table lookup
or Section 2.1.3 chain formulas), *cross component* (boundary articulation
points bracketing every path, Section 2.2), *unreachable*.  The scalar
``query`` walks that decision tree one pair at a time — dict lookups,
Python ``set`` intersections, one LCA per pair.

:class:`BulkOracleIndex` runs the whole decision tree as array passes:

1. classify **all** pairs at once (boolean masks over the pair array);
2. resolve each class with batched gathers — same-component pairs are
   grouped per component and handed to a vectorized per-component distance
   kernel, cross-component pairs get their bracketing APs from the
   vectorized binary-lifting LCA of
   :meth:`repro.decomposition.block_cut_tree.BlockCutTree.boundary_aps_many`
   and finish with one fused ``d(u,a1) + A[a1,a2] + d(a2,v)`` pass.

The index is oracle-agnostic: it only needs the component vertex lists,
the block-cut tree, the articulation closure ``A``, and a callable
``dist_many(cid, lu, lv)`` that answers component-local distances for
index arrays — the full-table oracle passes a table gather, the reduced
oracle passes the vectorized chain-formula kernel.  Every resolution is
bit-identical to the scalar ``query`` (same lookups, same minimum sets,
same association order), which the qa suite asserts across the
adversarial corpus.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..decomposition.block_cut_tree import BlockCutTree
from ..obs import metrics as _metrics
from ..obs import provenance as _prov
from ..obs.provenance import BatchProvenance
from ..obs.trace import span as _span

__all__ = ["BulkOracleIndex"]

#: Component-local distance kernel.  The optional ``formula_out`` int8
#: array (same length as ``lu``) receives per-pair resolver codes from
#: :mod:`repro.obs.provenance` when provenance capture is active; passing
#: ``None`` (the default) must leave the arithmetic untouched.
DistManyFn = Callable[..., np.ndarray]

_C_BATCHES = _metrics.counter("bulk_query.batches")
_C_PAIRS = _metrics.counter("bulk_query.pairs")
_C_SAME = _metrics.counter("bulk_query.same_component_pairs")
_C_CROSS = _metrics.counter("bulk_query.cross_component_pairs")
_C_UNREACH = _metrics.counter("bulk_query.unreachable_pairs")
_C_GROUPS = _metrics.counter("bulk_query.component_groups")


class BulkOracleIndex:
    """Vectorized pair classification + resolution for a distance oracle.

    Parameters
    ----------
    n:
        Vertex count of the original graph.
    tree:
        Its :class:`~repro.decomposition.block_cut_tree.BlockCutTree`.
    component_vertices:
        ``component_vertices[c]`` lists the global vertex ids of component
        ``c`` — local index *is* position, matching both oracles' tables.
    dist_many:
        ``dist_many(cid, lu, lv) -> distances`` for arrays of
        component-local indices; must be bit-identical to the oracle's
        scalar per-component distance.
    ap_matrix:
        The ``a × a`` articulation closure.  May be attached after
        construction (the reduced oracle derives it *from* this index's
        :attr:`ap_shared`).
    """

    def __init__(
        self,
        n: int,
        tree: BlockCutTree,
        component_vertices: Sequence[np.ndarray],
        dist_many: DistManyFn,
        ap_matrix: np.ndarray | None = None,
    ) -> None:
        self.n = int(n)
        self.tree = tree
        self._dist_many = dist_many
        self.ap_matrix = ap_matrix
        a = len(tree.ap_ids)
        n_blocks = len(component_vertices)

        self.is_ap = np.zeros(self.n, dtype=bool)
        self.ap_idx_of = np.full(self.n, -1, dtype=np.int64)
        # AP index → vertex id, for mapping boundary-AP indices back to
        # graph vertices in provenance records.
        self.ap_ids = np.asarray(tree.ap_ids, dtype=np.int64)
        if a:
            self.is_ap[self.ap_ids] = True
            self.ap_idx_of[self.ap_ids] = np.arange(a, dtype=np.int64)

        # Home component + local index for every non-AP vertex; per-block
        # local positions of every AP (``-1`` where the AP is not a member).
        # Single-vertex blocks (self-loops) are filled first so that a
        # vertex's multi-vertex block — the only one that can reach other
        # vertices — wins, mirroring ``BlockCutTree._vertex_block``.
        self.comp_of = np.full(self.n, -1, dtype=np.int64)
        self.local_of = np.full(self.n, -1, dtype=np.int64)
        self.ap_local = np.full((n_blocks, a), -1, dtype=np.int64)
        for multi in (False, True):
            for cid, verts in enumerate(component_vertices):
                verts = np.asarray(verts, dtype=np.int64)
                if (verts.size > 1) != multi:
                    continue
                loc = np.arange(verts.size, dtype=np.int64)
                ap_here = self.is_ap[verts]
                plain = verts[~ap_here]
                self.comp_of[plain] = cid
                self.local_of[plain] = loc[~ap_here]
                if ap_here.any():
                    self.ap_local[cid, self.ap_idx_of[verts[ap_here]]] = loc[ap_here]
        self.member = self.is_ap | (self.comp_of >= 0)

        # Minimum intra-component distance for every AP pair sharing a
        # block (``inf`` elsewhere) — the vectorized form of the scalar
        # "min over shared components" branch, and the edge list the
        # reduced oracle's articulation closure is built from.
        self.ap_shared = np.full((a, a), np.inf, dtype=np.float64)
        for cid in range(n_blocks):
            here = np.nonzero(self.ap_local[cid] >= 0)[0]
            if here.size < 2:
                continue
            iu, iv = np.triu_indices(here.size, k=1)
            gi, gj = here[iu], here[iv]
            li, lj = self.ap_local[cid, gi], self.ap_local[cid, gj]
            # Both orientations are gathered: per-source Dijkstra tables
            # can differ in the last ulp between d(i,j) and d(j,i), and
            # the scalar query always reads the (u, v) orientation.
            np.minimum.at(self.ap_shared, (gi, gj), self._dist_many(cid, li, lj))
            np.minimum.at(self.ap_shared, (gj, gi), self._dist_many(cid, lj, li))
        np.fill_diagonal(self.ap_shared, 0.0)

    # ------------------------------------------------------------------ #

    def _grouped_dist(
        self,
        comp: np.ndarray,
        lu: np.ndarray,
        lv: np.ndarray,
        formula_out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``dist_many`` over mixed-component pairs, one batch per component."""
        out = np.empty(comp.size, dtype=np.float64)
        order = np.argsort(comp, kind="stable")
        sorted_comp = comp[order]
        cut = np.nonzero(np.diff(sorted_comp))[0] + 1
        starts = np.concatenate([[0], cut])
        ends = np.concatenate([cut, [comp.size]])
        _C_GROUPS.inc(int(starts.size))
        for s, e in zip(starts, ends):
            idx = order[s:e]
            cid = int(comp[idx[0]])
            if formula_out is None:
                out[idx] = self._dist_many(cid, lu[idx], lv[idx])
            else:
                f = np.zeros(idx.size, dtype=np.int8)
                out[idx] = self._dist_many(cid, lu[idx], lv[idx], formula_out=f)
                formula_out[idx] = f
        return out

    def _to_ap_many(self, verts: np.ndarray, ap_idx: np.ndarray) -> np.ndarray:
        """Distance from each vertex to its bracketing AP (0 for AP verts)."""
        out = np.zeros(verts.size, dtype=np.float64)
        plain = ~self.is_ap[verts]
        if plain.any():
            comp = self.comp_of[verts[plain]]
            lu = self.local_of[verts[plain]]
            la = self.ap_local[comp, ap_idx[plain]]
            out[plain] = self._grouped_dist(comp, lu, la)
        return out

    def _resolve(self, pairs: np.ndarray, prov: BatchProvenance | None) -> np.ndarray:
        """Classify + resolve a validated ``(k, 2)`` pair array.

        The single code path behind :meth:`query_many` (``prov=None``) and
        :meth:`explain_many`: provenance capture only *adds* attribution
        writes next to the existing masks, so explained distances are
        bit-identical to unexplained ones.
        """
        k = pairs.shape[0]
        out = np.full(k, np.inf, dtype=np.float64)
        _C_BATCHES.inc()
        _C_PAIRS.inc(k)
        with _span("apsp.bulk_query", cat="apsp", pairs=k):
            u, v = pairs[:, 0], pairs[:, 1]
            eq = u == v
            out[eq] = 0.0
            live = ~eq & self.member[u] & self.member[v]

            apu, apv = self.is_ap[u], self.is_ap[v]
            if prov is not None:
                prov.cls[eq] = _prov.C_SELF
                prov.resolver[eq] = _prov.R_IDENTITY
                prov.comp_u[:] = self.comp_of[u]
                prov.comp_v[:] = self.comp_of[v]
            # Same component, no APs involved: unique components must match.
            same_nn = live & ~apu & ~apv & (self.comp_of[u] == self.comp_of[v])
            # Exactly one AP: shared iff the AP sits in the other's block.
            one_ap = live & (apu ^ apv)
            comp1 = np.where(apu, self.comp_of[v], self.comp_of[u])
            ap_side = np.where(apu, u, v)
            l_ap = np.full(k, -1, dtype=np.int64)
            if one_ap.any():
                l_ap[one_ap] = self.ap_local[
                    comp1[one_ap], self.ap_idx_of[ap_side[one_ap]]
                ]
            one_ap_shared = one_ap & (l_ap >= 0)
            # Both APs: the precomputed min over shared blocks answers
            # directly (``inf`` marks "no shared block" → cross class).
            both_ap = live & apu & apv
            both_ap_shared = np.zeros(k, dtype=bool)
            if both_ap.any():
                d = self.ap_shared[self.ap_idx_of[u[both_ap]], self.ap_idx_of[v[both_ap]]]
                hit = np.isfinite(d)
                sel = np.nonzero(both_ap)[0]
                out[sel[hit]] = d[hit]
                both_ap_shared[sel[hit]] = True
                if prov is not None:
                    prov.cls[sel[hit]] = _prov.C_SAME
                    prov.resolver[sel[hit]] = _prov.R_AP_SHARED

            same_comp = same_nn | one_ap_shared
            if same_comp.any():
                idx = np.nonzero(same_comp)[0]
                comp = np.where(
                    apu[idx] | apv[idx], comp1[idx], self.comp_of[u[idx]]
                )
                lu = np.where(apu[idx], l_ap[idx], self.local_of[u[idx]])
                lv = np.where(apv[idx], l_ap[idx], self.local_of[v[idx]])
                if prov is None:
                    out[idx] = self._grouped_dist(comp, lu, lv)
                else:
                    f = np.zeros(idx.size, dtype=np.int8)
                    out[idx] = self._grouped_dist(comp, lu, lv, formula_out=f)
                    prov.cls[idx] = _prov.C_SAME
                    prov.resolver[idx] = f
                    prov.component[idx] = comp
            _C_SAME.inc(int(same_comp.sum() + both_ap_shared.sum()))

            cross = live & ~(same_comp | both_ap_shared)
            n_cross = 0
            if cross.any():
                ci = np.nonzero(cross)[0]
                a1, a2, same_block, disc = self.tree.boundary_aps_many(u[ci], v[ci])
                # Leftover same-block / disconnected pairs answer ``inf``,
                # matching the scalar query's fallthrough.
                ok = ~(same_block | disc)
                sel = ci[ok]
                if sel.size:
                    a1, a2 = a1[ok], a2[ok]
                    d_u = self._to_ap_many(u[sel], a1)
                    d_v = self._to_ap_many(v[sel], a2)
                    out[sel] = (d_u + self.ap_matrix[a1, a2]) + d_v
                    if prov is not None:
                        prov.cls[sel] = _prov.C_CROSS
                        prov.resolver[sel] = _prov.R_AP_BRIDGE
                        prov.ap1[sel] = self.ap_ids[a1]
                        prov.ap2[sel] = self.ap_ids[a2]
                n_cross = int(sel.size)
            _C_CROSS.inc(n_cross)
            _C_UNREACH.inc(int(np.isinf(out).sum()))
            if prov is not None:
                # Resolved-but-unreachable can't happen; unreachable pairs
                # keep the C_UNREACHABLE/R_NONE defaults.  inf out of a
                # resolver (e.g. a disconnected reduced component) still
                # reports as unreachable.
                unreach = np.isinf(out)
                prov.cls[unreach] = _prov.C_UNREACHABLE
                prov.resolver[unreach] = _prov.R_NONE
                prov.distances[:] = out
        return out

    def _check_pairs(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"expected a (k, 2) pair array, got {pairs.shape}")
        if pairs.shape[0] and self.ap_matrix is None:
            raise ValueError("BulkOracleIndex.ap_matrix is not attached yet")
        return pairs

    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        """Distances for a ``(k, 2)`` pair array, classified in bulk."""
        pairs = self._check_pairs(pairs)
        if pairs.shape[0] == 0:
            return np.full(0, np.inf, dtype=np.float64)
        return self._resolve(pairs, None)

    def explain_many(self, pairs: np.ndarray) -> BatchProvenance:
        """Like :meth:`query_many`, but returns full per-pair provenance.

        Distances (``.distances``) are bit-identical to
        :meth:`query_many` on the same pairs — both run the same
        :meth:`_resolve` body; provenance only adds attribution writes.
        """
        pairs = self._check_pairs(pairs)
        prov = BatchProvenance(pairs)
        if pairs.shape[0]:
            self._resolve(pairs, prov)
        _prov.count_explain(pairs.shape[0])
        return prov
