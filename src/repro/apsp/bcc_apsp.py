"""Banerjee et al. [4] baseline: BCC decomposition + pendant peeling.

The comparison baseline of Figure 2 (general graphs).  It decomposes the
graph by biconnected components and block-cut tree exactly like Section
2.2, but solves every component with plain repeated Dijkstra — no ear
reduction — after first peeling iterative degree-1 ("pendant") vertices,
which is the one structural optimisation [4] applies.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..sssp.engine import all_pairs
from .composition import assemble_full_matrix, build_component_tables

__all__ = ["peel_pendants", "bcc_apsp"]


def peel_pendants(g: CSRGraph) -> tuple[CSRGraph, np.ndarray, list[tuple[int, int, float]]]:
    """Iteratively remove degree-1 vertices.

    Returns
    -------
    (core, core_ids, peel):
        ``core`` is the 2-core-ish remainder relabelled over ``core_ids``
        (original ids of surviving vertices); ``peel`` lists the removals
        in order as ``(pendant, support, weight)`` tuples in *original*
        ids — replaying it in reverse re-attaches every pendant.
    """
    n = g.n
    alive = np.ones(n, dtype=bool)
    deg = g.degree.copy()
    # Remaining incident edges per vertex, maintained lazily.
    indptr, indices, eids, weights = g.indptr, g.indices, g.csr_eid, g.weights
    edge_alive = np.ones(g.m, dtype=bool)
    stack = [v for v in range(n) if deg[v] == 1]
    peel: list[tuple[int, int, float]] = []
    while stack:
        v = stack.pop()
        if not alive[v] or deg[v] != 1:
            continue
        # Find the unique live incident edge.
        for slot in range(indptr[v], indptr[v + 1]):
            e = int(eids[slot])
            if edge_alive[e]:
                u = int(indices[slot])
                w = float(weights[slot])
                edge_alive[e] = False
                break
        else:  # pragma: no cover - deg bookkeeping guarantees an edge
            continue
        alive[v] = False
        deg[v] = 0
        deg[u] -= 1
        peel.append((v, u, w))
        if deg[u] == 1:
            stack.append(u)
    core_ids = np.nonzero(alive)[0]
    keep_edges = [
        e for e in range(g.m)
        if edge_alive[e] and alive[g.edge_u[e]] and alive[g.edge_v[e]]
    ]
    inv = np.full(n, -1, dtype=np.int64)
    inv[core_ids] = np.arange(core_ids.size)
    core = CSRGraph(
        core_ids.size,
        inv[g.edge_u[keep_edges]],
        inv[g.edge_v[keep_edges]],
        g.edge_w[keep_edges],
    )
    return core, core_ids, peel


def bcc_apsp(g: CSRGraph, peel: bool = True) -> np.ndarray:
    """Full APSP matrix via the [4] pipeline.

    ``peel=False`` disables pendant removal (then the pendants simply show
    up as single-edge biconnected components, which costs more AP-table
    work — the effect [4] optimises away).
    """
    n = g.n
    if not peel:
        ct = build_component_tables(g, solver=all_pairs)
        return assemble_full_matrix(g, ct)

    core, core_ids, peel_ops = peel_pendants(g)
    out = np.full((n, n), np.inf, dtype=np.float64)
    if core.n:
        ct = build_component_tables(core, solver=all_pairs)
        core_mat = assemble_full_matrix(core, ct)
        out[np.ix_(core_ids, core_ids)] = core_mat
    # Re-attach pendants in reverse removal order: when v re-enters, its
    # support u already has correct rows, so d(v, ·) = w + d(u, ·).
    for v, u, w in reversed(peel_ops):
        row = out[u, :] + w
        out[v, :] = row
        out[:, v] = row
        out[v, v] = 0.0
    np.fill_diagonal(out, 0.0)
    return out
