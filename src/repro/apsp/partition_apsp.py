"""Djidjev et al. [12] baseline: partition-based APSP for planar graphs.

The Figure 2/3 planar-graph comparator.  Pipeline (Section 2.4.3 of the
paper, and [12]):

1. partition ``G`` into ``k`` parts (METIS there, ``metis_lite`` here);
2. APSP *within* each part (distances restricted to the part);
3. build the **boundary graph**: vertices incident to cut edges; edges =
   original cut edges plus, for each part, a clique over its boundary
   vertices weighted by the intra-part distances;
4. exact APSP on the boundary graph ([12] recurses here for GPU memory;
   one level suffices for correctness and is what we run);
5. combine: a path leaves its part through some boundary vertex whose
   prefix stays inside the part, so
   ``d(u, v) = min(D_part(u, v), min_{b1, b2} D_i(u, b1) + B[b1, b2] + D_j(b2, v))``.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..partition.metis_lite import Partition, partition_graph
from ..sssp.engine import ZERO_WEIGHT_NUDGE, all_pairs

__all__ = ["partition_apsp"]


def partition_apsp(
    g: CSRGraph,
    k: int | None = None,
    seed: int = 0,
    partition: Partition | None = None,
    recursive_threshold: int | None = None,
) -> np.ndarray:
    """Full exact APSP matrix via the [12] partition scheme.

    ``k`` defaults to ``max(2, n // 256)`` — roughly [12]'s part sizing.
    With ``recursive_threshold`` set, a boundary graph larger than the
    threshold is itself solved by a recursive :func:`partition_apsp` call
    — the "computed in a recursive fashion" step [12] uses to fit GPU
    memory.  Results are identical either way.
    """
    n = g.n
    if n == 0:
        return np.zeros((0, 0))
    if k is None:
        k = max(2, n // 256)
    if partition is None:
        partition = partition_graph(g, k, seed=seed)
    asg = partition.assignment
    parts = partition.parts()

    # Step 2: intra-part APSP (restricted to each part's induced subgraph).
    intra: list[np.ndarray] = []
    part_vmaps: list[np.ndarray] = []
    for verts in parts:
        sub, vmap = g.subgraph(verts)
        intra.append(all_pairs(sub))
        part_vmaps.append(vmap)

    # Step 3: boundary graph.
    cross = asg[g.edge_u] != asg[g.edge_v]
    if not cross.any():
        # No cut edges: parts are disconnected from each other.
        out = np.full((n, n), np.inf)
        for verts, mat in zip(part_vmaps, intra):
            out[np.ix_(verts, verts)] = mat
        np.fill_diagonal(out, 0.0)
        return out

    boundary = np.unique(np.concatenate([g.edge_u[cross], g.edge_v[cross]]))
    b_index = np.full(n, -1, dtype=np.int64)
    b_index[boundary] = np.arange(boundary.size)

    bus: list[int] = []
    bvs: list[int] = []
    bws: list[float] = []
    # Original cut edges.
    for e in np.nonzero(cross)[0]:
        bus.append(int(b_index[g.edge_u[e]]))
        bvs.append(int(b_index[g.edge_v[e]]))
        bws.append(float(g.edge_w[e]))
    # Intra-part cliques over boundary vertices.
    for p, verts in enumerate(part_vmaps):
        local_b = np.nonzero(b_index[verts] >= 0)[0]
        for x in range(local_b.size):
            for y in range(x + 1, local_b.size):
                li, lj = int(local_b[x]), int(local_b[y])
                w = float(intra[p][li, lj])
                if np.isfinite(w):
                    bus.append(int(b_index[verts[li]]))
                    bvs.append(int(b_index[verts[lj]]))
                    bws.append(max(w, ZERO_WEIGHT_NUDGE))
    bgraph = CSRGraph(boundary.size, bus, bvs, bws)

    # Step 4: exact boundary APSP ([12] recurses here when the boundary
    # graph is itself too large).
    if (
        recursive_threshold is not None
        and bgraph.n > recursive_threshold
        and bgraph.n < n  # guard: recursion must shrink the instance
    ):
        bmat = partition_apsp(
            bgraph,
            k=max(2, bgraph.n // max(recursive_threshold // 2, 16)),
            seed=seed + 1,
            recursive_threshold=recursive_threshold,
        )
    else:
        bmat = all_pairs(bgraph)

    # Step 5: combine.  d_to_boundary[j, v] = exact d(boundary_j, v).
    out = np.full((n, n), np.inf)
    for p, verts in enumerate(part_vmaps):
        out[np.ix_(verts, verts)] = intra[p]
    # Exact distance from every boundary vertex to every vertex:
    # min over the target's part boundary of bmat + intra tail.
    nb = boundary.size
    d_b_all = np.full((nb, n), np.inf)
    for p, verts in enumerate(part_vmaps):
        local_b = np.nonzero(b_index[verts] >= 0)[0]
        blk = d_b_all[:, verts]
        for lb in local_b:
            bj = int(b_index[verts[lb]])
            np.minimum(blk, bmat[:, bj : bj + 1] + intra[p][lb : lb + 1, :], out=blk)
        d_b_all[:, verts] = blk
    # Rows: each vertex exits its own part through its part's boundary.
    for p, verts in enumerate(part_vmaps):
        local_b = np.nonzero(b_index[verts] >= 0)[0]
        if local_b.size == 0:
            continue
        blk = out[verts, :]
        for lb in local_b:
            bj = int(b_index[verts[lb]])
            np.minimum(blk, intra[p][:, lb : lb + 1] + d_b_all[bj : bj + 1, :], out=blk)
        out[verts, :] = blk
    np.fill_diagonal(out, 0.0)
    return out
