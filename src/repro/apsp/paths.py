"""Shortest-path reconstruction through the ear reduction.

``ear_apsp_full`` returns distances; this module returns the actual
vertex paths while still doing all heavy work on the reduced graph:
predecessor matrices are built for ``G^r`` only, and a query stitches

``u —(chain walk)— anchor —(reduced path, chains re-expanded)— anchor —(chain walk)— v``

choosing the best of the Section 2.1.3 anchor combinations (plus the
along-the-chain direct route when both endpoints share a chain).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.csgraph as csgraph

from ..decomposition.reduce import ReducedGraph, reduce_graph
from ..graph.csr import CSRGraph
from ..sssp.engine import adjacency_matrix

__all__ = ["EarPathReconstructor"]

_NO_PRED = -9999


class EarPathReconstructor:
    """Exact point-to-point shortest paths with reduced-graph storage."""

    def __init__(self, g: CSRGraph) -> None:
        self.graph = g
        self.red: ReducedGraph = reduce_graph(g)
        simple = self.red.simple_graph()
        if simple.n:
            mat = adjacency_matrix(simple)
            self.dist_r, self.pred_r = csgraph.dijkstra(
                mat, directed=False, return_predecessors=True
            )
        else:
            self.dist_r = np.zeros((0, 0))
            self.pred_r = np.zeros((0, 0), dtype=np.int64)
        # Cheapest chain per reduced vertex pair, for re-expanding steps
        # of the reduced path (parallel chains keep only the lightest).
        self._pair_chain: dict[tuple[int, int], int] = {}
        rid = self.red.reduced_id
        for cidx, chain in enumerate(self.red.chains):
            a, b = int(rid[chain.left]), int(rid[chain.right])
            key = (min(a, b), max(a, b))
            prev = self._pair_chain.get(key)
            if prev is None or chain.weight < self.red.chains[prev].weight:
                self._pair_chain[key] = cidx

    # ------------------------------------------------------------------ #

    def _anchors(self, x: int) -> list[tuple[int, float, list[int]]]:
        """``(reduced anchor id, distance, walk x→anchor)`` options."""
        red = self.red
        if red.kept_mask[x]:
            return [(int(red.reduced_id[x]), 0.0, [int(x)])]
        chain = red.chains[int(red.chain_of[x])]
        pos = int(red.pos_in_chain[x])
        left_walk = [int(v) for v in chain.vertices[: pos + 1][::-1]]
        right_walk = [int(v) for v in chain.vertices[pos:]]
        return [
            (int(red.reduced_id[chain.left]), float(red.dist_left[x]), left_walk),
            (int(red.reduced_id[chain.right]), float(red.dist_right[x]), right_walk),
        ]

    def _reduced_vertex_path(self, a: int, b: int) -> list[int] | None:
        """Reduced-graph vertex path ``a → b`` from the predecessor matrix."""
        if a == b:
            return [a]
        if not np.isfinite(self.dist_r[a, b]):
            return None
        path = [b]
        cur = b
        while cur != a:
            cur = int(self.pred_r[a, cur])
            if cur == _NO_PRED:
                return None
            path.append(cur)
        path.reverse()
        return path

    def _expand_reduced_path(self, rpath: list[int]) -> list[int]:
        """Reduced vertex path → original vertex walk via chain expansion."""
        red = self.red
        out = [int(red.kept_ids[rpath[0]])]
        for a, b in zip(rpath[:-1], rpath[1:]):
            cidx = self._pair_chain[(min(a, b), max(a, b))]
            chain = red.chains[cidx]
            verts = [int(v) for v in chain.vertices]
            if red.reduced_id[chain.left] != a:
                verts = verts[::-1]
            out.extend(verts[1:])
        return out

    def path(self, u: int, v: int) -> tuple[float, list[int]]:
        """``(distance, vertex path)``; ``(inf, [])`` when disconnected."""
        if u == v:
            return 0.0, [int(u)]
        red = self.red
        best: tuple[float, list[int]] | None = None

        # Direct along-the-chain route when both live on one chain.
        if (
            not red.kept_mask[u]
            and not red.kept_mask[v]
            and red.chain_of[u] == red.chain_of[v]
        ):
            chain = red.chains[int(red.chain_of[u])]
            pu, pv = int(red.pos_in_chain[u]), int(red.pos_in_chain[v])
            lo, hi = min(pu, pv), max(pu, pv)
            d = float(abs(chain.prefix[pu] - chain.prefix[pv]))
            walk = [int(x) for x in chain.vertices[lo : hi + 1]]
            if pu > pv:
                walk = walk[::-1]
            best = (d, walk)

        for au, du, walk_u in self._anchors(u):
            for av, dv, walk_v in self._anchors(v):
                mid = float(self.dist_r[au, av]) if self.dist_r.size else np.inf
                total = du + mid + dv
                if not np.isfinite(total):
                    continue
                if best is not None and total >= best[0] - 1e-12:
                    continue
                rpath = self._reduced_vertex_path(au, av)
                if rpath is None:
                    continue
                mid_walk = self._expand_reduced_path(rpath)
                # walk_u runs u→au (au == mid_walk[0]); mid_walk runs au→av;
                # walk_v runs v→av, so its reverse continues av→v.
                walk = walk_u + mid_walk[1:] + walk_v[::-1][1:]
                best = (total, walk)
        if best is None:
            return float("inf"), []
        return best

    def distance(self, u: int, v: int) -> float:
        """Distance only (same minimisation, no walk assembly)."""
        if u == v:
            return 0.0
        red = self.red
        best = np.inf
        if (
            not red.kept_mask[u]
            and not red.kept_mask[v]
            and red.chain_of[u] == red.chain_of[v]
        ):
            chain = red.chains[int(red.chain_of[u])]
            best = float(
                abs(chain.prefix[red.pos_in_chain[u]] - chain.prefix[red.pos_in_chain[v]])
            )
        for au, du, _ in self._anchors(u):
            for av, dv, _ in self._anchors(v):
                mid = float(self.dist_r[au, av]) if self.dist_r.size else np.inf
                best = min(best, du + mid + dv)
        return float(best)
