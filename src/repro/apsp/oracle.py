"""Space-efficient exact distance oracle (Section 2.3's memory story).

Instead of the ``O(n²)`` full matrix, the oracle stores only the
per-biconnected-component tables ``Aᵢ`` and the articulation-point table
``A`` — ``O(a² + Σ nᵢ²)`` entries — and answers arbitrary ``d(u, v)``
queries exactly through the block-cut tree:

``d(u, v) = d_i(u, a1) + A[a1, a2] + d_j(a2, v)``

where ``a1``/``a2`` are the articulation points bracketing every ``u–v``
path (Section 2.2, Stage 2).  Same-component queries are table lookups.

:func:`memory_model` reproduces the two memory columns of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..decomposition.biconnected import biconnected_components
from ..decomposition.block_cut_tree import BlockCutTree
from ..graph.csr import CSRGraph
from .composition import Solver, build_component_tables

__all__ = ["DistanceOracle", "memory_model"]


class DistanceOracle:
    """Exact all-pairs distance oracle with the paper's memory footprint."""

    def __init__(
        self,
        g: CSRGraph,
        solver: Solver | None = None,
        engine: str = "scipy",
        chunk_size: int | None = None,
        workers: int | None = None,
    ) -> None:
        self.graph = g
        bcc = biconnected_components(g)
        self.tables = build_component_tables(
            g,
            solver=solver,
            bcc=bcc,
            engine=engine,
            chunk_size=chunk_size,
            workers=workers,
        )
        self.tree = BlockCutTree(g, bcc)
        # Local index of each vertex inside each of its components.
        self._local = self.tables.vertex_local
        self._bulk = None  # built lazily on the first query_many

    # ------------------------------------------------------------------ #

    def _local_index(self, cid: int, v: int) -> int:
        for c, li in self._local[int(v)]:
            if c == cid:
                return li
        raise KeyError(f"vertex {v} not in component {cid}")

    def query(self, u: int, v: int) -> float:
        """Exact shortest-path distance between ``u`` and ``v``.

        ``inf`` when disconnected.  O(1) table lookups plus an O(log n)
        LCA for cross-component pairs.
        """
        if u == v:
            return 0.0
        memb_u = self._local.get(int(u), [])
        memb_v = self._local.get(int(v), [])
        if not memb_u or not memb_v:
            return float("inf")  # isolated vertex
        # Same component: direct lookup (min over shared components — an
        # AP pair can share several).
        shared = {c for c, _ in memb_u} & {c for c, _ in memb_v}
        if shared:
            return min(
                float(self.tables.tables[c][self._local_index(c, u), self._local_index(c, v)])
                for c in shared
            )
        try:
            bracket = self.tree.boundary_aps(u, v)
        except ValueError:
            return float("inf")
        if bracket is None:  # same block found via the tree — handled above
            return float("inf")
        a1, a2 = bracket
        # d(u, a1) within u's block on the path side; a1 is in *some*
        # shared component with u — min over u's components containing a1.
        d_u = self._vertex_to_ap(memb_u, u, a1)
        d_v = self._vertex_to_ap(memb_v, v, a2)
        mid = float(
            self.tables.ap_matrix[
                self.tables.ap_index[a1], self.tables.ap_index[a2]
            ]
        )
        return d_u + mid + d_v

    def _vertex_to_ap(self, memberships: list[tuple[int, int]], v: int, ap: int) -> float:
        best = float("inf")
        for cid, li in memberships:
            for c2, la in self._local.get(int(ap), []):
                if c2 == cid:
                    best = min(best, float(self.tables.tables[cid][li, la]))
        return best

    def _bulk_index(self):
        if self._bulk is None:
            from .bulk_query import BulkOracleIndex

            tables = self.tables.tables

            def dist_many(
                cid: int,
                lu: np.ndarray,
                lv: np.ndarray,
                formula_out: np.ndarray | None = None,
            ) -> np.ndarray:
                if formula_out is not None:
                    from ..obs.provenance import R_TABLE

                    formula_out[:] = R_TABLE
                return np.asarray(tables[cid][lu, lv], dtype=np.float64)

            self._bulk = BulkOracleIndex(
                self.graph.n,
                self.tree,
                self.tables.bcc.component_vertices,
                dist_many,
                ap_matrix=np.asarray(self.tables.ap_matrix, dtype=np.float64),
            )
        return self._bulk

    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        """Bulk ``(k, 2)`` pair queries as array passes.

        One vectorized classification pass plus batched per-component
        gathers (:mod:`repro.apsp.bulk_query`) — bit-identical to the
        scalar :meth:`query` loop.
        """
        return self._bulk_index().query_many(pairs)

    def explain_many(self, pairs: np.ndarray):
        """Bulk queries with full per-pair provenance attached.

        Returns a :class:`repro.obs.provenance.BatchProvenance` whose
        ``.distances`` are bit-identical to :meth:`query_many`.
        """
        return self._bulk_index().explain_many(pairs)

    def explain(self, u: int, v: int):
        """Explain one query: a :class:`~repro.obs.provenance.QueryProvenance`."""
        pairs = np.array([[u, v]], dtype=np.int64)
        return self.explain_many(pairs).record(0)

    def query_many_scalar(self, pairs: np.ndarray) -> np.ndarray:
        """The per-pair scalar reference loop (kept for differential tests
        and the bulk-query smoke benchmark)."""
        pairs = np.asarray(pairs)
        return np.fromiter(
            (self.query(int(a), int(b)) for a, b in pairs),
            dtype=np.float64,
            count=len(pairs),
        )

    # ------------------------------------------------------------------ #

    def memory_bytes(self, dtype_bytes: int = 4) -> int:
        """Bytes of distance storage held (the "Our's Memory" column)."""
        return self.tables.table_bytes(dtype_bytes)

    def full_matrix_bytes(self, dtype_bytes: int = 4) -> int:
        """Bytes a dense ``n × n`` table would need ("Max Memory")."""
        return self.graph.n * self.graph.n * dtype_bytes


@dataclass(frozen=True)
class MemoryModel:
    """Both memory columns of Table 1, in megabytes."""

    ours_mb: float
    max_mb: float

    @property
    def saving_factor(self) -> float:
        return self.max_mb / self.ours_mb if self.ours_mb else float("inf")


def memory_model(g: CSRGraph, dtype_bytes: int = 4, reduced: bool = False) -> MemoryModel:
    """Compute the ``a² + Σ nᵢ²`` vs ``n²`` storage model without solving.

    Only the decompositions run (cheap); no distance tables are built, so
    this scales to the full-size Table 1 stand-ins.

    With ``reduced=True`` each component counts only its ear-*reduced*
    vertex count (plus three scalars per removed vertex for the
    ``left/right/offset`` anchor arrays): the footprint of an oracle that
    stores ``S^r`` and answers removed-vertex queries through the
    Section 2.1.3 formulas on the fly.  The paper's Table 1 savings for
    single-BCC, chain-heavy graphs (c-50) are only explainable with this
    accounting — the plain per-component formula gives no saving when the
    graph is one biconnected component.
    """
    from .composition import build_component_tables  # noqa: F401 (doc xref)
    from ..decomposition.reduce import reduce_graph

    bcc = biconnected_components(g)
    entries = 0
    for cid, verts in enumerate(bcc.component_vertices):
        if reduced:
            sub, _ = bcc.component_subgraph(g, cid)
            red = reduce_graph(sub, keep=bcc.component_keep_mask(g, cid))
            entries += int(red.graph.n) ** 2 + 3 * red.n_removed
        else:
            entries += int(verts.size) ** 2
    a = int(bcc.is_articulation.sum())
    entries += a * a
    mb = 1.0 / (1024 * 1024)
    return MemoryModel(
        ours_mb=entries * dtype_bytes * mb,
        max_mb=g.n * g.n * dtype_bytes * mb,
    )
