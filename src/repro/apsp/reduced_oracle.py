"""Reduced-table distance oracle: ``S^r`` storage + on-the-fly formulas.

:class:`repro.apsp.DistanceOracle` stores full per-component tables
(every vertex of each BCC).  This variant goes one step further down the
paper's own path: it stores only the **reduced** per-component tables
(vertices of degree ≥ 3 plus articulation points) together with the
three scalars per removed vertex (left/right anchors and chain offsets),
and evaluates the Section 2.1.3 closed forms at query time.

Storage is ``O(a² + Σ (nᵢʳ)² + n)`` — the accounting that reproduces the
paper's Table-1 savings even for single-BCC, chain-heavy graphs (c-50:
52% of vertices removed → tables shrink ~4×).

Queries remain exact; the test-suite checks every pair against the full
matrix.
"""

from __future__ import annotations

import numpy as np

from ..decomposition.biconnected import biconnected_components
from ..decomposition.block_cut_tree import BlockCutTree
from ..decomposition.reduce import ReducedGraph, reduce_graph
from ..graph.csr import CSRGraph
from ..obs.provenance import R_CHAIN_CHAIN, R_CHAIN_ENDPOINT, R_SAME_CHAIN, R_TABLE
from ..sssp.engine import ZERO_WEIGHT_NUDGE, all_pairs
from .bulk_query import BulkOracleIndex

__all__ = ["ReducedDistanceOracle"]


class _ComponentStore:
    """Reduced table + anchor data for one biconnected component."""

    __slots__ = ("red", "table", "vmap", "local")

    def __init__(self, red: ReducedGraph, table: np.ndarray, vmap: np.ndarray):
        self.red = red
        self.table = table          # distances over red.graph vertices
        self.vmap = vmap            # component-local -> global vertex ids
        self.local = {int(v): i for i, v in enumerate(vmap)}

    def dist(self, lu: int, lv: int) -> float:
        """Exact distance between two component-local vertices."""
        red = self.red
        if lu == lv:
            return 0.0
        ku, kv = red.kept_mask[lu], red.kept_mask[lv]
        s = self.table
        rid = red.reduced_id
        if ku and kv:
            return float(s[rid[lu], rid[lv]])
        if ku or kv:
            x, v = (lv, lu) if ku else (lu, lv)
            cx = red.chains[int(red.chain_of[x])]
            lx, rx = rid[cx.left], rid[cx.right]
            return float(
                min(
                    red.dist_left[x] + s[lx, rid[v]],
                    red.dist_right[x] + s[rx, rid[v]],
                )
            )
        # both removed
        cx = red.chains[int(red.chain_of[lu])]
        cy = red.chains[int(red.chain_of[lv])]
        lx, rx = rid[cx.left], rid[cx.right]
        ly, ry = rid[cy.left], rid[cy.right]
        dlu, dru = red.dist_left[lu], red.dist_right[lu]
        dlv, drv = red.dist_left[lv], red.dist_right[lv]
        best = min(
            dlu + s[lx, ly] + dlv,
            dlu + s[lx, ry] + drv,
            dru + s[rx, ly] + dlv,
            dru + s[rx, ry] + drv,
        )
        if red.chain_of[lu] == red.chain_of[lv]:
            direct = abs(
                float(cx.prefix[red.pos_in_chain[lu]])
                - float(cx.prefix[red.pos_in_chain[lv]])
            )
            best = min(best, direct)
        return float(best)

    def dist_many(
        self,
        lu: np.ndarray,
        lv: np.ndarray,
        formula_out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`dist` over arrays of component-local vertices.

        Evaluates the Section 2.1.3 closed forms as batched gathers over
        the chain prefix arrays — bit-identical to the scalar path (same
        table lookups, same minimum sets, same association order).
        ``formula_out`` (provenance capture) receives per-pair resolver
        codes; it only ever adds attribution writes, never changes the
        arithmetic.
        """
        red = self.red
        s = self.table
        rid = red.reduced_id
        lu = np.asarray(lu, dtype=np.int64)
        lv = np.asarray(lv, dtype=np.int64)
        out = np.empty(lu.size, dtype=np.float64)
        ku = red.kept_mask[lu]
        kv = red.kept_mask[lv]
        both = ku & kv
        if both.any():
            out[both] = s[rid[lu[both]], rid[lv[both]]]
            if formula_out is not None:
                formula_out[both] = R_TABLE
        one = ku ^ kv
        if one.any():
            x = np.where(ku[one], lv[one], lu[one])  # the removed vertex
            w = np.where(ku[one], lu[one], lv[one])  # the kept vertex
            ch = red.chain_of[x]
            lx = red.chain_left_rid[ch]
            rx = red.chain_right_rid[ch]
            rw = rid[w]
            out[one] = np.minimum(
                red.dist_left[x] + s[lx, rw], red.dist_right[x] + s[rx, rw]
            )
            if formula_out is not None:
                formula_out[one] = R_CHAIN_ENDPOINT
        rr = ~ku & ~kv
        if rr.any():
            x, y = lu[rr], lv[rr]
            cx, cy = red.chain_of[x], red.chain_of[y]
            lx, rx = red.chain_left_rid[cx], red.chain_right_rid[cx]
            ly, ry = red.chain_left_rid[cy], red.chain_right_rid[cy]
            dlu, dru = red.dist_left[x], red.dist_right[x]
            dlv, drv = red.dist_left[y], red.dist_right[y]
            best = (dlu + s[lx, ly]) + dlv
            np.minimum(best, (dlu + s[lx, ry]) + drv, out=best)
            np.minimum(best, (dru + s[rx, ly]) + dlv, out=best)
            np.minimum(best, (dru + s[rx, ry]) + drv, out=best)
            if formula_out is not None:
                # Attribute the winner *before* the in-place same-chain
                # min below mutates ``best`` (float min is exact, so the
                # <= test reproduces exactly which term wins).
                direct = np.abs(dlu - dlv)
                same = (cx == cy) & (direct <= best)
                f = np.full(same.size, R_CHAIN_CHAIN, dtype=np.int8)
                f[same] = R_SAME_CHAIN
                formula_out[rr] = f
            # Same-chain closed form over the cumsum prefixes.
            np.minimum(best, np.abs(dlu - dlv), out=best, where=cx == cy)
            out[rr] = best
        out[lu == lv] = 0.0
        return out

    def entries(self) -> int:
        """Stored distance entries plus anchor scalars."""
        return int(self.table.size) + 3 * self.red.n_removed


class ReducedDistanceOracle:
    """Exact APSP oracle over reduced per-component tables."""

    def __init__(self, g: CSRGraph, chunk_size: int | None = None) -> None:
        self.graph = g
        bcc = biconnected_components(g)
        self.tree = BlockCutTree(g, bcc)
        self.bcc = bcc
        self.stores: list[_ComponentStore] = []
        self._memberships: dict[int, list[int]] = {}
        for cid in range(bcc.count):
            sub, vmap = bcc.component_subgraph(g, cid)
            red = reduce_graph(sub, keep=bcc.component_keep_mask(g, cid))
            table = all_pairs(red.simple_graph(), chunk_size=chunk_size)
            self.stores.append(_ComponentStore(red, table, vmap))
            for v in vmap:
                self._memberships.setdefault(int(v), []).append(cid)
        # Vectorized classification index; its ``ap_shared`` matrix is the
        # min intra-component distance per co-located AP pair — exactly the
        # edge list the articulation closure is built from, so the closure
        # construction below is one sparse-Dijkstra over its finite entries
        # instead of the old per-pair Python loop.
        self.ap_ids = bcc.articulation_points
        self.ap_index = {int(v): i for i, v in enumerate(self.ap_ids)}
        self._bulk = BulkOracleIndex(
            g.n,
            self.tree,
            bcc.component_vertices,
            lambda cid, lu, lv, formula_out=None: self.stores[cid].dist_many(
                lu, lv, formula_out=formula_out
            ),
        )
        a = len(self.ap_ids)
        if a:
            import scipy.sparse as sp
            import scipy.sparse.csgraph as csgraph

            rows, cols = np.nonzero(np.triu(np.isfinite(self._bulk.ap_shared), k=1))
            if rows.size:
                vals = np.maximum(
                    self._bulk.ap_shared[rows, cols], ZERO_WEIGHT_NUDGE
                )
                mat = sp.coo_matrix((vals, (rows, cols)), shape=(a, a)).tocsr()
            else:
                mat = sp.csr_matrix((a, a))
            self.ap_matrix = np.asarray(csgraph.dijkstra(mat, directed=False))
            np.fill_diagonal(self.ap_matrix, 0.0)
        else:
            self.ap_matrix = np.zeros((0, 0))
        self._bulk.ap_matrix = self.ap_matrix

    # ------------------------------------------------------------------ #

    def _intra(self, cid: int, u: int, v: int) -> float:
        store = self.stores[cid]
        return store.dist(store.local[int(u)], store.local[int(v)])

    def _to_ap(self, memberships: list[int], v: int, ap: int) -> float:
        best = float("inf")
        for cid in memberships:
            store = self.stores[cid]
            la = store.local.get(int(ap))
            if la is not None:
                best = min(best, store.dist(store.local[int(v)], la))
        return best

    def query(self, u: int, v: int) -> float:
        """Exact shortest-path distance (``inf`` when disconnected)."""
        if u == v:
            return 0.0
        mu = self._memberships.get(int(u), [])
        mv = self._memberships.get(int(v), [])
        if not mu or not mv:
            return float("inf")
        shared = set(mu) & set(mv)
        if shared:
            return min(self._intra(c, u, v) for c in shared)
        try:
            bracket = self.tree.boundary_aps(u, v)
        except ValueError:
            return float("inf")
        if bracket is None:  # pragma: no cover - shared-block handled above
            return float("inf")
        a1, a2 = bracket
        mid = float(self.ap_matrix[self.ap_index[a1], self.ap_index[a2]])
        return self._to_ap(mu, u, a1) + mid + self._to_ap(mv, v, a2)

    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        """Bulk ``(k, 2)`` pair queries as array passes.

        Classifies every pair at once and resolves each class with batched
        gathers (see :mod:`repro.apsp.bulk_query`) — bit-identical to the
        scalar :meth:`query` loop, integer factors faster.
        """
        return self._bulk.query_many(pairs)

    def explain_many(self, pairs: np.ndarray):
        """Bulk queries with full per-pair provenance attached.

        Returns a :class:`repro.obs.provenance.BatchProvenance` whose
        ``.distances`` are bit-identical to :meth:`query_many` (chain
        closed forms attributed as ``chain-endpoint`` / ``chain-chain`` /
        ``same-chain``).
        """
        return self._bulk.explain_many(pairs)

    def explain(self, u: int, v: int):
        """Explain one query: a :class:`~repro.obs.provenance.QueryProvenance`."""
        pairs = np.array([[u, v]], dtype=np.int64)
        return self.explain_many(pairs).record(0)

    def query_many_scalar(self, pairs: np.ndarray) -> np.ndarray:
        """The per-pair scalar reference loop (kept for differential tests
        and the bulk-query smoke benchmark)."""
        pairs = np.asarray(pairs)
        return np.fromiter(
            (self.query(int(a), int(b)) for a, b in pairs),
            dtype=np.float64,
            count=len(pairs),
        )

    def memory_bytes(self, dtype_bytes: int = 4) -> int:
        """Stored entries × entry size (compare with the dense table)."""
        entries = int(self.ap_matrix.size) + sum(s.entries() for s in self.stores)
        return entries * dtype_bytes

    def full_matrix_bytes(self, dtype_bytes: int = 4) -> int:
        return self.graph.n * self.graph.n * dtype_bytes
