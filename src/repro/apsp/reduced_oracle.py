"""Reduced-table distance oracle: ``S^r`` storage + on-the-fly formulas.

:class:`repro.apsp.DistanceOracle` stores full per-component tables
(every vertex of each BCC).  This variant goes one step further down the
paper's own path: it stores only the **reduced** per-component tables
(vertices of degree ≥ 3 plus articulation points) together with the
three scalars per removed vertex (left/right anchors and chain offsets),
and evaluates the Section 2.1.3 closed forms at query time.

Storage is ``O(a² + Σ (nᵢʳ)² + n)`` — the accounting that reproduces the
paper's Table-1 savings even for single-BCC, chain-heavy graphs (c-50:
52% of vertices removed → tables shrink ~4×).

Queries remain exact; the test-suite checks every pair against the full
matrix.
"""

from __future__ import annotations

import numpy as np

from ..decomposition.biconnected import biconnected_components
from ..decomposition.block_cut_tree import BlockCutTree
from ..decomposition.reduce import ReducedGraph, reduce_graph
from ..graph.csr import CSRGraph
from ..sssp.engine import ZERO_WEIGHT_NUDGE, all_pairs

__all__ = ["ReducedDistanceOracle"]


class _ComponentStore:
    """Reduced table + anchor data for one biconnected component."""

    __slots__ = ("red", "table", "vmap", "local")

    def __init__(self, red: ReducedGraph, table: np.ndarray, vmap: np.ndarray):
        self.red = red
        self.table = table          # distances over red.graph vertices
        self.vmap = vmap            # component-local -> global vertex ids
        self.local = {int(v): i for i, v in enumerate(vmap)}

    def dist(self, lu: int, lv: int) -> float:
        """Exact distance between two component-local vertices."""
        red = self.red
        if lu == lv:
            return 0.0
        ku, kv = red.kept_mask[lu], red.kept_mask[lv]
        s = self.table
        rid = red.reduced_id
        if ku and kv:
            return float(s[rid[lu], rid[lv]])
        if ku or kv:
            x, v = (lv, lu) if ku else (lu, lv)
            cx = red.chains[int(red.chain_of[x])]
            lx, rx = rid[cx.left], rid[cx.right]
            return float(
                min(
                    red.dist_left[x] + s[lx, rid[v]],
                    red.dist_right[x] + s[rx, rid[v]],
                )
            )
        # both removed
        cx = red.chains[int(red.chain_of[lu])]
        cy = red.chains[int(red.chain_of[lv])]
        lx, rx = rid[cx.left], rid[cx.right]
        ly, ry = rid[cy.left], rid[cy.right]
        dlu, dru = red.dist_left[lu], red.dist_right[lu]
        dlv, drv = red.dist_left[lv], red.dist_right[lv]
        best = min(
            dlu + s[lx, ly] + dlv,
            dlu + s[lx, ry] + drv,
            dru + s[rx, ly] + dlv,
            dru + s[rx, ry] + drv,
        )
        if red.chain_of[lu] == red.chain_of[lv]:
            direct = abs(
                float(cx.prefix[red.pos_in_chain[lu]])
                - float(cx.prefix[red.pos_in_chain[lv]])
            )
            best = min(best, direct)
        return float(best)

    def entries(self) -> int:
        """Stored distance entries plus anchor scalars."""
        return int(self.table.size) + 3 * self.red.n_removed


class ReducedDistanceOracle:
    """Exact APSP oracle over reduced per-component tables."""

    def __init__(self, g: CSRGraph, chunk_size: int | None = None) -> None:
        self.graph = g
        bcc = biconnected_components(g)
        self.tree = BlockCutTree(g, bcc)
        self.bcc = bcc
        self.stores: list[_ComponentStore] = []
        self._memberships: dict[int, list[int]] = {}
        for cid in range(bcc.count):
            sub, vmap = bcc.component_subgraph(g, cid)
            red = reduce_graph(sub, keep=bcc.component_keep_mask(g, cid))
            table = all_pairs(red.simple_graph(), chunk_size=chunk_size)
            self.stores.append(_ComponentStore(red, table, vmap))
            for v in vmap:
                self._memberships.setdefault(int(v), []).append(cid)
        # Articulation-point closure (same construction as composition.py,
        # but fed by the reduced stores).
        self.ap_ids = bcc.articulation_points
        self.ap_index = {int(v): i for i, v in enumerate(self.ap_ids)}
        a = len(self.ap_ids)
        if a:
            import scipy.sparse as sp
            import scipy.sparse.csgraph as csgraph

            best: dict[tuple[int, int], float] = {}
            for cid, store in enumerate(self.stores):
                aps_here = [
                    (self.ap_index[int(v)], store.local[int(v)])
                    for v in self.bcc.component_vertices[cid]
                    if int(v) in self.ap_index
                ]
                for x, (gi, li) in enumerate(aps_here):
                    for gj, lj in aps_here[x + 1 :]:
                        w = store.dist(li, lj)
                        if not np.isfinite(w):
                            continue
                        key = (min(gi, gj), max(gi, gj))
                        w = max(w, ZERO_WEIGHT_NUDGE)
                        if key not in best or w < best[key]:
                            best[key] = w
            if best:
                rows = np.fromiter((k[0] for k in best), dtype=np.int64, count=len(best))
                cols = np.fromiter((k[1] for k in best), dtype=np.int64, count=len(best))
                vals = np.fromiter(best.values(), dtype=np.float64, count=len(best))
                mat = sp.coo_matrix((vals, (rows, cols)), shape=(a, a)).tocsr()
            else:
                mat = sp.csr_matrix((a, a))
            self.ap_matrix = np.asarray(csgraph.dijkstra(mat, directed=False))
            np.fill_diagonal(self.ap_matrix, 0.0)
        else:
            self.ap_matrix = np.zeros((0, 0))

    # ------------------------------------------------------------------ #

    def _intra(self, cid: int, u: int, v: int) -> float:
        store = self.stores[cid]
        return store.dist(store.local[int(u)], store.local[int(v)])

    def _to_ap(self, memberships: list[int], v: int, ap: int) -> float:
        best = float("inf")
        for cid in memberships:
            store = self.stores[cid]
            la = store.local.get(int(ap))
            if la is not None:
                best = min(best, store.dist(store.local[int(v)], la))
        return best

    def query(self, u: int, v: int) -> float:
        """Exact shortest-path distance (``inf`` when disconnected)."""
        if u == v:
            return 0.0
        mu = self._memberships.get(int(u), [])
        mv = self._memberships.get(int(v), [])
        if not mu or not mv:
            return float("inf")
        shared = set(mu) & set(mv)
        if shared:
            return min(self._intra(c, u, v) for c in shared)
        try:
            bracket = self.tree.boundary_aps(u, v)
        except ValueError:
            return float("inf")
        if bracket is None:  # pragma: no cover - shared-block handled above
            return float("inf")
        a1, a2 = bracket
        mid = float(self.ap_matrix[self.ap_index[a1], self.ap_index[a2]])
        return self._to_ap(mu, u, a1) + mid + self._to_ap(mv, v, a2)

    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        """Vectorised entry point over a ``(k, 2)`` pair array."""
        pairs = np.asarray(pairs)
        return np.fromiter(
            (self.query(int(a), int(b)) for a, b in pairs),
            dtype=np.float64,
            count=len(pairs),
        )

    def memory_bytes(self, dtype_bytes: int = 4) -> int:
        """Stored entries × entry size (compare with the dense table)."""
        entries = int(self.ap_matrix.size) + sum(s.entries() for s in self.stores)
        return entries * dtype_bytes

    def full_matrix_bytes(self, dtype_bytes: int = 4) -> int:
        return self.graph.n * self.graph.n * dtype_bytes
