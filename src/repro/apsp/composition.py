"""Per-biconnected-component APSP composition (Section 2.2).

The general-graph pipeline: decompose into BCCs, solve each component with
a pluggable solver (ear-reduced Algorithm 1 for "Our Approach", plain
repeated Dijkstra for the Banerjee baseline), then stitch distances across
components through the articulation-point table ``A``.

Key facts the composition relies on (both hold for any graph):

* the distance between two vertices of one biconnected component is
  realised inside the component, so the per-component table is globally
  exact for intra-component pairs;
* every path between different components passes through all articulation
  points on the block-cut tree path, so
  ``d(u, v) = min_{a ∈ AP(comp(u))} d_comp(u, a) + A[a, ·→v]`` with
  equality attained at the forced exit AP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from ..decomposition.biconnected import BCCDecomposition, biconnected_components
from ..graph.csr import CSRGraph
from ..sssp.engine import ZERO_WEIGHT_NUDGE
from .ear_apsp import solve_component

Solver = Callable[[CSRGraph], np.ndarray]

__all__ = ["ComponentTables", "build_component_tables", "assemble_full_matrix"]


@dataclass
class ComponentTables:
    """Per-component distance tables plus the articulation-point closure.

    Attributes
    ----------
    bcc:
        The underlying decomposition.
    tables:
        ``tables[c]`` is the exact distance matrix over
        ``bcc.component_vertices[c]`` (in that vertex order).
    ap_ids / ap_index:
        Articulation point vertex ids (sorted) and their positions.
    ap_matrix:
        ``a × a`` exact distance table ``A`` between articulation points,
        computed by APSP over the *AP graph* (APs joined by intra-component
        distances) — the Stage 2 table of Section 2.2.
    """

    bcc: BCCDecomposition
    tables: list[np.ndarray]
    ap_ids: np.ndarray
    ap_index: dict[int, int]
    ap_matrix: np.ndarray
    solve_seconds: float = 0.0
    compose_seconds: float = 0.0
    vertex_local: dict[int, list[tuple[int, int]]] = field(default_factory=dict)

    def component_of(self, v: int) -> list[tuple[int, int]]:
        """``(component id, local index)`` memberships of vertex ``v``."""
        return self.vertex_local.get(int(v), [])

    def table_bytes(self, dtype_bytes: int = 4) -> int:
        """Memory model of Section 2.3: ``a² + Σ nᵢ²`` entries.

        The paper reports storage assuming 4-byte entries (its "Max Memory"
        for 10K nodes is ~400 MB); ``dtype_bytes`` makes that explicit.
        """
        total = self.ap_matrix.size
        total += sum(t.size for t in self.tables)
        return int(total) * dtype_bytes


def build_component_tables(
    g: CSRGraph,
    solver: Solver | None = None,
    bcc: BCCDecomposition | None = None,
    engine: str = "scipy",
    chunk_size: int | None = None,
    workers: int | None = None,
) -> ComponentTables:
    """Solve every biconnected component and close distances over the APs.

    ``solver`` maps a component subgraph to its exact distance matrix; it
    defaults to the ear-reduced Algorithm 1 (:func:`solve_component`) with
    the given ``engine``/``chunk_size``/``workers`` forwarded to its
    Phase-II bulk-SSSP dispatch.  An explicit ``solver`` wins over those
    knobs.
    """
    if solver is None:
        def solver(sub: CSRGraph) -> np.ndarray:
            return solve_component(
                sub, engine=engine, chunk_size=chunk_size, workers=workers
            )
    if bcc is None:
        bcc = biconnected_components(g)
    t0 = time.perf_counter()
    tables: list[np.ndarray] = []
    vertex_local: dict[int, list[tuple[int, int]]] = {}
    for cid in range(bcc.count):
        sub, vmap = bcc.component_subgraph(g, cid)
        tables.append(solver(sub))
        for local, v in enumerate(vmap):
            vertex_local.setdefault(int(v), []).append((cid, local))
    t1 = time.perf_counter()

    ap_ids = bcc.articulation_points
    ap_index = {int(v): i for i, v in enumerate(ap_ids)}
    a = len(ap_ids)
    if a:
        # AP graph: clique per component over its APs, weighted by the
        # already-exact intra-component distances.  Two APs can share more
        # than one component, so pairs are deduplicated keeping the minimum
        # (COO duplicates would otherwise *sum* on CSR conversion).
        best: dict[tuple[int, int], float] = {}
        for cid in range(bcc.count):
            verts = bcc.component_vertices[cid]
            local_aps = [
                (ap_index[int(v)], i)
                for i, v in enumerate(verts)
                if int(v) in ap_index
            ]
            for x, (gi, li) in enumerate(local_aps):
                for gj, lj in local_aps[x + 1 :]:
                    w = float(tables[cid][li, lj])
                    if not np.isfinite(w):
                        continue
                    key = (min(gi, gj), max(gi, gj))
                    w = max(w, ZERO_WEIGHT_NUDGE)
                    if key not in best or w < best[key]:
                        best[key] = w
        if best:
            rows = np.fromiter((k[0] for k in best), dtype=np.int64, count=len(best))
            cols = np.fromiter((k[1] for k in best), dtype=np.int64, count=len(best))
            vals = np.fromiter(best.values(), dtype=np.float64, count=len(best))
            mat = sp.coo_matrix((vals, (rows, cols)), shape=(a, a)).tocsr()
        else:
            mat = sp.csr_matrix((a, a))
        ap_matrix = np.asarray(
            csgraph.dijkstra(mat, directed=False), dtype=np.float64
        )
        np.fill_diagonal(ap_matrix, 0.0)
    else:
        ap_matrix = np.zeros((0, 0), dtype=np.float64)
    t2 = time.perf_counter()

    return ComponentTables(
        bcc=bcc,
        tables=tables,
        ap_ids=ap_ids,
        ap_index=ap_index,
        ap_matrix=ap_matrix,
        solve_seconds=t1 - t0,
        compose_seconds=t2 - t1,
        vertex_local=vertex_local,
    )


def assemble_full_matrix(g: CSRGraph, ct: ComponentTables) -> np.ndarray:
    """Materialise the full ``n × n`` matrix from component tables.

    Used by tests and the full-matrix benchmarks; production queries
    should go through :class:`repro.apsp.DistanceOracle`, which keeps the
    ``O(a² + Σ nᵢ²)`` footprint.
    """
    n = g.n
    out = np.full((n, n), np.inf, dtype=np.float64)
    bcc = ct.bcc
    a = len(ct.ap_ids)

    # ap_to_all[k, v]: exact distance from AP k to every vertex v, built
    # per component as min over that component's APs.
    ap_to_all = np.full((a, n), np.inf, dtype=np.float64)
    for cid in range(bcc.count):
        verts = bcc.component_vertices[cid]
        local_aps = [
            (ct.ap_index[int(v)], i) for i, v in enumerate(verts) if int(v) in ct.ap_index
        ]
        for gk, lk in local_aps:
            cand = ct.ap_matrix[:, gk : gk + 1] + ct.tables[cid][lk : lk + 1, :]
            block = ap_to_all[:, verts]
            np.minimum(block, cand, out=block)
            ap_to_all[:, verts] = block

    for cid in range(bcc.count):
        verts = bcc.component_vertices[cid]
        # Intra-component pairs straight from the table.
        blk = out[np.ix_(verts, verts)]
        np.minimum(blk, ct.tables[cid], out=blk)
        out[np.ix_(verts, verts)] = blk
        # Cross-component: exit through one of this component's APs.
        local_aps = [
            (ct.ap_index[int(v)], i) for i, v in enumerate(verts) if int(v) in ct.ap_index
        ]
        if not local_aps:
            continue
        # One in-place pass per AP keeps peak memory at O(n_i · n) instead
        # of materialising an (n_i × k_i × n) broadcast cube.
        blk = out[verts, :]
        for gk, lk in local_aps:
            np.minimum(
                blk, ct.tables[cid][:, lk : lk + 1] + ap_to_all[gk : gk + 1, :], out=blk
            )
        out[verts, :] = blk
    np.fill_diagonal(out, 0.0)
    return out
