"""Unweighted (hop-count) APSP via vectorized BFS levels.

Banerjee et al. [4] evaluate BFS-based exploration alongside APSP; for
unit-weight graphs a level-synchronous BFS per source is far cheaper than
Dijkstra and maps directly onto the frontier kernel the simulated GPU
executes.  ``ear_bfs_apsp`` runs the same Algorithm-1 pipeline with
hop-count semantics: chain offsets are integers, everything else is
unchanged (the reduction machinery is weight-agnostic).
"""

from __future__ import annotations

import numpy as np

from ..decomposition.reduce import reduce_graph
from ..graph.csr import CSRGraph
from .ear_apsp import extend_reduced_distances

__all__ = ["bfs_distances", "bfs_apsp", "ear_bfs_apsp"]


def bfs_distances(g: CSRGraph, source: int) -> np.ndarray:
    """Hop counts from ``source`` (``inf`` when unreachable)."""
    dist = np.full(g.n, np.inf)
    dist[source] = 0.0
    frontier = np.zeros(g.n, dtype=bool)
    frontier[source] = True
    level = 0
    indptr, indices = g.indptr, g.indices
    while frontier.any():
        level += 1
        active = np.nonzero(frontier)[0]
        starts = indptr[active]
        counts = indptr[active + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.repeat(
            starts - np.concatenate([[0], np.cumsum(counts)[:-1]]), counts
        )
        slots = np.arange(total, dtype=np.int64) + offsets
        targets = indices[slots]
        fresh = targets[np.isinf(dist[targets])]
        if fresh.size == 0:
            break
        dist[fresh] = level
        frontier = np.zeros(g.n, dtype=bool)
        frontier[fresh] = True
    return dist


def bfs_apsp(g: CSRGraph) -> np.ndarray:
    """Hop-count matrix by one BFS per source."""
    out = np.empty((g.n, g.n))
    for s in range(g.n):
        out[s] = bfs_distances(g, s)
    return out


def ear_bfs_apsp(g: CSRGraph) -> np.ndarray:
    """Hop-count APSP through the ear reduction.

    Runs the reduction with the hop metric (every edge weight 1): chain
    edges contract to their hop length, the reduced matrix is solved by
    BFS when it stays unweighted, and the standard Phase-III extension
    produces the full matrix.
    """
    unit = g.with_weights(np.ones(g.m))
    red = reduce_graph(unit)
    simple = red.simple_graph()
    if simple.m and np.allclose(simple.edge_w, simple.edge_w.astype(np.int64)) and (
        simple.edge_w == 1
    ).all():
        s_r = bfs_apsp(simple)
    else:
        # contracted chains carry integer lengths > 1: fall back to the
        # weighted engine for the (small) reduced graph
        from ..sssp.engine import all_pairs

        s_r = all_pairs(simple)
    return extend_reduced_distances(red, s_r)
