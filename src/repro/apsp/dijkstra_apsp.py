"""Repeated-Dijkstra APSP — the undecomposed baseline ("w/o" columns).

Running an SSSP from every vertex is the reference against which all
decomposition techniques in the paper are measured.  Two code paths:

* ``engine="scipy"`` — bulk compiled path (default; what benchmarks use).
* ``engine="python"`` — per-source pure-Python heap Dijkstra, matching the
  paper's "one Dijkstra instance per thread" structure; used for the work
  accounting of the heterogeneous executor and as a correctness oracle.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..sssp.dijkstra import dijkstra
from ..sssp.engine import all_pairs

__all__ = ["dijkstra_apsp"]


def dijkstra_apsp(g: CSRGraph, engine: str = "scipy") -> np.ndarray:
    """Full ``n × n`` distance matrix by one SSSP per vertex."""
    if engine == "scipy":
        return all_pairs(g)
    if engine == "python":
        out = np.empty((g.n, g.n), dtype=np.float64)
        for s in range(g.n):
            out[s] = dijkstra(g, s)
        return out
    raise ValueError(f"unknown engine {engine!r} (use 'scipy' or 'python')")
