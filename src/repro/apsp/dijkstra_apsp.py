"""Repeated-Dijkstra APSP — the undecomposed baseline ("w/o" columns).

Running an SSSP from every vertex is the reference against which all
decomposition techniques in the paper are measured.  Two code paths:

* ``engine="scipy"`` — bulk compiled path (default; what benchmarks use),
  with the adjacency cache and chunked dispatch of
  :mod:`repro.sssp.engine`.
* ``engine="parallel"`` — the process-parallel backend of
  :mod:`repro.hetero.parallel`: source chunks fan out over worker
  processes sharing the CSR buffers through shared memory.
* ``engine="python"`` — per-source pure-Python heap Dijkstra, matching the
  paper's "one Dijkstra instance per thread" structure; used for the work
  accounting of the heterogeneous executor and as a correctness oracle.

All three return bit-identical matrices (per-source runs are independent,
so neither chunking nor the process fan-out changes any arithmetic).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..sssp.dijkstra import dijkstra
from ..sssp.engine import all_pairs

__all__ = ["dijkstra_apsp"]


def dijkstra_apsp(
    g: CSRGraph,
    engine: str = "scipy",
    chunk_size: int | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Full ``n × n`` distance matrix by one SSSP per vertex."""
    if engine == "scipy":
        return all_pairs(g, chunk_size=chunk_size)
    if engine == "parallel":
        # Imported lazily: repro.hetero pulls in the APSP composition layer,
        # so a module-level import here would be circular.
        from ..hetero.parallel import parallel_all_pairs

        return parallel_all_pairs(g, workers=workers, chunk_size=chunk_size)
    if engine == "python":
        out = np.empty((g.n, g.n), dtype=np.float64)
        for s in range(g.n):
            out[s] = dijkstra(g, s)
        return out
    raise ValueError(
        f"unknown engine {engine!r} (use 'scipy', 'parallel' or 'python')"
    )
