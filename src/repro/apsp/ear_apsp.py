"""Algorithm 1: ear-decomposition based APSP (the paper's core APSP).

Three phases (Section 2.1):

1. **Preprocess** — contract degree-2 chains: ``G → G^r``.
2. **Process** — Dijkstra from every vertex of ``G^r`` (heterogeneous in
   the paper; here either the compiled bulk engine or, under the
   heterogeneous executor, per-source work units).
3. **Post-process** — extend ``S^r`` to all of ``G`` with the closed-form
   minima over chain anchors ``left(x)/right(x)`` (Section 2.1.3), fully
   vectorized: the removed-to-removed block is four broadcast min-plus
   terms plus a per-chain along-the-chain correction.

:func:`ear_apsp_full` applies the pipeline to the *whole* graph, which is
valid for any connected or disconnected input (the anchor-exit argument
only needs chain interiors to have degree 2).  The per-biconnected-
component organisation of Section 2.2 — which is what gives the
``O(a² + Σ nᵢ²)`` memory — lives in :mod:`repro.apsp.composition` and
:mod:`repro.apsp.oracle` and reuses :func:`solve_component` below.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..decomposition.reduce import ReducedGraph, reduce_graph
from ..graph.csr import CSRGraph
from ..sssp.engine import all_pairs
from .dijkstra_apsp import dijkstra_apsp

__all__ = ["EarAPSPReport", "extend_reduced_distances", "ear_apsp_full", "solve_component"]


@dataclass
class EarAPSPReport:
    """Phase instrumentation for one Algorithm-1 run."""

    n: int = 0
    n_reduced: int = 0
    n_removed: int = 0
    t_preprocess: float = 0.0
    t_process: float = 0.0
    t_postprocess: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.t_preprocess + self.t_process + self.t_postprocess


def extend_reduced_distances(red: ReducedGraph, s_r: np.ndarray) -> np.ndarray:
    """Phase III: lift the reduced distance matrix ``S^r`` to all of ``G``.

    Implements the Section 2.1.3 formulas:

    * kept–kept pairs copy straight from ``S^r``;
    * removed ``x`` to kept ``v``:
      ``min(dl(x) + S^r[ℓx, v], dr(x) + S^r[rx, v])``;
    * removed–removed: the four ``{ℓ,r} × {ℓ,r}`` crossing terms, then for
      pairs on the *same* chain the direct along-chain distance
      ``|prefix(x) − prefix(y)|`` is min-ed in.
    """
    g = red.original
    n = g.n
    kept = red.kept_ids
    out = np.full((n, n), np.inf, dtype=np.float64)
    if kept.size:
        out[np.ix_(kept, kept)] = s_r
    removed = np.nonzero(~red.kept_mask)[0]
    if removed.size:
        ch = red.chain_of[removed]
        left = red.chain_left_rid[ch]
        right = red.chain_right_rid[ch]
        dl = red.dist_left[removed]
        dr = red.dist_right[removed]

        # Removed -> kept (and the symmetric kept -> removed block).
        d_rk = np.minimum(dl[:, None] + s_r[left, :], dr[:, None] + s_r[right, :])
        out[np.ix_(removed, kept)] = d_rk
        out[np.ix_(kept, removed)] = d_rk.T

        # Removed -> removed: four anchor crossings.
        d_rr = dl[:, None] + s_r[np.ix_(left, left)] + dl[None, :]
        np.minimum(d_rr, dl[:, None] + s_r[np.ix_(left, right)] + dr[None, :], out=d_rr)
        np.minimum(d_rr, dr[:, None] + s_r[np.ix_(right, left)] + dl[None, :], out=d_rr)
        np.minimum(d_rr, dr[:, None] + s_r[np.ix_(right, right)] + dr[None, :], out=d_rr)

        # Same-chain pairs may be closer along the chain itself:
        # ``dist_left`` is the per-vertex chain prefix, so the along-chain
        # distance is ``|prefix(x) − prefix(y)|`` — one masked minimum over
        # the whole removed × removed block instead of a per-chain loop.
        same_chain = ch[:, None] == ch[None, :]
        direct = np.abs(dl[:, None] - dl[None, :])
        np.minimum(d_rr, direct, out=d_rr, where=same_chain)
        out[np.ix_(removed, removed)] = d_rr
    np.fill_diagonal(out, 0.0)
    return out


def ear_apsp_full(
    g: CSRGraph,
    engine: str = "scipy",
    report: EarAPSPReport | None = None,
    chunk_size: int | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Algorithm 1 on the whole graph: full exact ``n × n`` matrix.

    ``engine`` selects the Phase-II SSSP implementation: ``"scipy"``
    (cached + chunked bulk dispatch, the default), ``"python"`` (per-source
    heaps), or ``"parallel"`` (the process-parallel backend of
    :mod:`repro.hetero.parallel` — ``workers`` processes fan out
    ``chunk_size``-source chunks over shared-memory CSR buffers).  Pass a
    :class:`EarAPSPReport` to collect phase timings and reduction
    statistics.
    """
    t0 = time.perf_counter()
    red = reduce_graph(g)
    t1 = time.perf_counter()
    simple = red.simple_graph()
    if engine == "scipy":
        s_r = all_pairs(simple, chunk_size=chunk_size)
    else:
        s_r = dijkstra_apsp(
            simple, engine=engine, chunk_size=chunk_size, workers=workers
        )
    t2 = time.perf_counter()
    out = extend_reduced_distances(red, s_r)
    t3 = time.perf_counter()
    if report is not None:
        report.n = g.n
        report.n_reduced = red.graph.n
        report.n_removed = red.n_removed
        report.t_preprocess += t1 - t0
        report.t_process += t2 - t1
        report.t_postprocess += t3 - t2
    return out


def solve_component(
    sub: CSRGraph,
    engine: str = "scipy",
    chunk_size: int | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Per-biconnected-component solver used by the composed pipeline.

    This is exactly :func:`ear_apsp_full` — named separately so that the
    composition layer (:mod:`repro.apsp.composition`) can swap in the
    Banerjee-style undecomposed solver for the baseline comparison.
    """
    return ear_apsp_full(sub, engine=engine, chunk_size=chunk_size, workers=workers)
