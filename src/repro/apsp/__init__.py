"""All-pairs shortest paths: ear-based pipeline, oracle, and baselines."""

from .bcc_apsp import bcc_apsp, peel_pendants
from .bfs_apsp import bfs_apsp, bfs_distances, ear_bfs_apsp
from .bulk_query import BulkOracleIndex
from .composition import ComponentTables, assemble_full_matrix, build_component_tables
from .dense import blocked_floyd_warshall, floyd_warshall
from .dijkstra_apsp import dijkstra_apsp
from .ear_apsp import (
    EarAPSPReport,
    ear_apsp_full,
    extend_reduced_distances,
    solve_component,
)
from .oracle import DistanceOracle, MemoryModel, memory_model
from .partition_apsp import partition_apsp
from .paths import EarPathReconstructor
from .reduced_oracle import ReducedDistanceOracle

__all__ = [
    "bcc_apsp",
    "bfs_apsp",
    "bfs_distances",
    "ear_bfs_apsp",
    "peel_pendants",
    "BulkOracleIndex",
    "ComponentTables",
    "assemble_full_matrix",
    "build_component_tables",
    "blocked_floyd_warshall",
    "floyd_warshall",
    "dijkstra_apsp",
    "EarAPSPReport",
    "ear_apsp_full",
    "extend_reduced_distances",
    "solve_component",
    "DistanceOracle",
    "MemoryModel",
    "memory_model",
    "partition_apsp",
    "EarPathReconstructor",
    "ReducedDistanceOracle",
]
