"""Experiment harness: one entry point per paper table/figure.

Each ``run_*`` function regenerates the corresponding artifact on the
Table-1 stand-ins and returns structured rows; the ``benchmarks/`` suite
and the ``repro-bench`` CLI are thin wrappers over these.  Every run
cross-checks its outputs (sampled distance equality for APSP, full basis
verification for MCB) before reporting a time, so a reported speedup can
never come from a wrong answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import datasets
from ..apsp.bcc_apsp import bcc_apsp
from ..apsp.ear_apsp import EarAPSPReport, ear_apsp_full
from ..apsp.oracle import memory_model
from ..apsp.partition_apsp import partition_apsp
from ..graph.stats import table1_row
from ..hetero.executor import Platform
from ..hetero.mcb_runner import mcb_with_trace
from ..hetero.trace import simulate_trace
from ..mcb.mehlhorn_michail import MMReport, mm_mcb
from ..mcb.verify import verify_cycle_basis
from ..obs.trace import span as _span
from .metrics import geomean, mteps, speedup as _speedup

__all__ = [
    "Table1Row",
    "run_table1",
    "Fig2Row",
    "run_fig2",
    "run_fig3",
    "Table2Row",
    "run_table2",
    "run_fig5",
    "run_fig6",
    "run_phase_breakdown",
]

PLATFORM_NAMES = ["sequential", "multicore", "gpu", "cpu+gpu"]


def _platforms() -> list[Platform]:
    return [
        Platform.sequential(),
        Platform.multicore(),
        Platform.gpu(),
        Platform.heterogeneous(),
    ]


def _sample_check(a: np.ndarray, b: np.ndarray, rng: np.random.Generator, k: int = 500) -> None:
    """Assert two distance matrices agree on k random entries."""
    n = a.shape[0]
    idx = rng.integers(0, n, size=(k, 2))
    av = a[idx[:, 0], idx[:, 1]]
    bv = b[idx[:, 0], idx[:, 1]]
    ok = np.isclose(
        np.nan_to_num(av, posinf=-1.0), np.nan_to_num(bv, posinf=-1.0), atol=1e-8
    )
    if not ok.all():
        bad = np.nonzero(~ok)[0][0]
        raise AssertionError(
            f"APSP mismatch at pair {tuple(idx[bad])}: {av[bad]} vs {bv[bad]}"
        )


# --------------------------------------------------------------------- #
# Table 1 — dataset structure and the memory model
# --------------------------------------------------------------------- #


@dataclass
class Table1Row:
    name: str
    n: int
    m: int
    n_bcc: int
    largest_bcc_pct: float
    nodes_removed_pct: float
    ours_mb: float
    max_mb: float
    reduced_mb: float = 0.0


def run_table1(scale: float | None = None, names: list[str] | None = None) -> list[Table1Row]:
    """Structure + memory columns for every Table-1 stand-in.

    ``ours_mb`` is the per-BCC table model of Section 2.3; ``reduced_mb``
    additionally stores only the ear-reduced tables (see
    :func:`repro.apsp.memory_model`).
    """
    rows: list[Table1Row] = []
    for spec in datasets.TABLE1:
        if names is not None and spec.name not in names:
            continue
        g = spec.generate(scale)
        st = table1_row(g, spec.name)
        mm = memory_model(g)
        mm_red = memory_model(g, reduced=True)
        rows.append(
            Table1Row(
                name=spec.name,
                n=st.n,
                m=st.m,
                n_bcc=st.n_bcc,
                largest_bcc_pct=st.largest_bcc_edge_pct,
                nodes_removed_pct=st.nodes_removed_pct,
                ours_mb=mm.ours_mb,
                max_mb=mm.max_mb,
                reduced_mb=mm_red.ours_mb,
            )
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 2 — APSP absolute times and speedups vs [4] and [12]
# --------------------------------------------------------------------- #


@dataclass
class Fig2Row:
    name: str
    kind: str           # "general" or "planar"
    n: int
    m: int
    t_ours: float
    t_baseline: float
    baseline: str       # "banerjee" or "djidjev"
    nodes_removed_pct: float = 0.0

    @property
    def speedup(self) -> float:
        return _speedup(self.t_baseline, self.t_ours)


def run_fig2(
    scale: float | None = None,
    names: list[str] | None = None,
    check: bool = True,
) -> list[Fig2Row]:
    """Ours (Algorithm 1) vs Banerjee [4] on general graphs and Djidjev
    [12] on planar graphs: wall-clock full-matrix APSP."""
    rows: list[Fig2Row] = []
    rng = np.random.default_rng(0)
    for spec in datasets.TABLE1:
        if names is not None and spec.name not in names:
            continue
        g = spec.generate(scale)
        rep = EarAPSPReport()
        t0 = time.perf_counter()
        # When a trace collector is live (repro.obs), each timed leg gets a
        # span so bench runs produce span trees alongside the wall times.
        with _span("bench.fig2.ours", cat="bench", dataset=spec.name):
            ours = ear_apsp_full(g, report=rep)
        t_ours = time.perf_counter() - t0
        if spec.planar:
            t0 = time.perf_counter()
            with _span("bench.fig2.baseline", cat="bench", dataset=spec.name,
                       baseline="djidjev"):
                base = partition_apsp(g, seed=1)
            t_base = time.perf_counter() - t0
            baseline = "djidjev"
        else:
            t0 = time.perf_counter()
            with _span("bench.fig2.baseline", cat="bench", dataset=spec.name,
                       baseline="banerjee"):
                base = bcc_apsp(g, peel=True)
            t_base = time.perf_counter() - t0
            baseline = "banerjee"
        if check:
            _sample_check(ours, base, rng)
        rows.append(
            Fig2Row(
                name=spec.name,
                kind="planar" if spec.planar else "general",
                n=g.n,
                m=g.m,
                t_ours=t_ours,
                t_baseline=t_base,
                baseline=baseline,
                nodes_removed_pct=100.0 * rep.n_removed / max(g.n, 1),
            )
        )
    return rows


def run_fig3(rows: list[Fig2Row]) -> list[dict]:
    """MTEPS series for the Figure 2 rows (Figure 3)."""
    return [
        {
            "name": r.name,
            "kind": r.kind,
            "mteps_ours": mteps(r.n, r.m, r.t_ours),
            "mteps_baseline": mteps(r.n, r.m, r.t_baseline),
            "baseline": r.baseline,
        }
        for r in rows
    ]


# --------------------------------------------------------------------- #
# Table 2 / Figures 5-6 — MCB on the four platforms, with/without ears
# --------------------------------------------------------------------- #


@dataclass
class Table2Row:
    name: str
    n: int
    m: int
    f: int
    #: virtual seconds: {platform: (with_ear, without_ear)}
    seconds: dict[str, tuple[float, float]] = field(default_factory=dict)
    wall_with_ear: float = 0.0
    wall_without_ear: float = 0.0
    basis_weight: float = 0.0


def run_table2(
    scale: float | None = None,
    names: list[str] | None = None,
    check: bool = True,
) -> list[Table2Row]:
    """The full Table 2: four implementations × with/without ear."""
    use = names if names is not None else datasets.MCB_DATASETS
    rows: list[Table2Row] = []
    for name in use:
        g = datasets.load(name, scale)
        row = Table2Row(name=name, n=g.n, m=g.m, f=g.cycle_space_dimension())
        per_platform: dict[str, list[float]] = {p: [0.0, 0.0] for p in PLATFORM_NAMES}
        for k, use_ear in enumerate((True, False)):
            t0 = time.perf_counter()
            with _span("bench.table2.mcb", cat="bench", dataset=name,
                       use_ear=use_ear):
                cycles, trace = mcb_with_trace(g, use_ear=use_ear)
            wall = time.perf_counter() - t0
            if use_ear:
                row.wall_with_ear = wall
            else:
                row.wall_without_ear = wall
            if check:
                rep = verify_cycle_basis(g, cycles)
                assert rep.ok, f"{name}: invalid basis ({rep.message})"
                if use_ear:
                    row.basis_weight = rep.total_weight
                else:
                    assert abs(rep.total_weight - row.basis_weight) <= 1e-6 * max(
                        1.0, row.basis_weight
                    ), f"{name}: ear/no-ear weight mismatch"
            for p in _platforms():
                res = simulate_trace(trace, p)
                per_platform[p.name][k] = res.total_time
        row.seconds = {p: (v[0], v[1]) for p, v in per_platform.items()}
        rows.append(row)
    return rows


def run_fig5(rows: list[Table2Row]) -> dict[str, float]:
    """Average speedup of each implementation over sequential (with ear)."""
    out: dict[str, float] = {}
    for p in PLATFORM_NAMES[1:]:
        out[p] = geomean(
            r.seconds["sequential"][0] / r.seconds[p][0] for r in rows
        )
    return out


def run_fig6(rows: list[Table2Row]) -> list[dict]:
    """Absolute virtual times per implementation (with ear) — Figure 6."""
    return [
        {"name": r.name, **{p: r.seconds[p][0] for p in PLATFORM_NAMES}}
        for r in rows
    ]


def ear_speedup_by_impl(rows: list[Table2Row]) -> dict[str, float]:
    """Average speedup attributable to ear decomposition, per platform."""
    return {
        p: geomean(r.seconds[p][1] / r.seconds[p][0] for r in rows)
        for p in PLATFORM_NAMES
    }


def run_phase_breakdown(
    name: str = "cond_mat_2003", scale: float | None = None
) -> dict[str, float]:
    """Section 3.5's label/scan/update shares on one dataset.

    The paper's percentages describe its heterogeneous kernels, so the
    shares here come from the recorded kernel work trace (simulated
    sequential stage times), not from Python wall time — the vectorized
    Python label pass is disproportionately fast relative to the
    pure-Python candidate store walk.
    """
    g = datasets.load(name, scale)
    _, trace = mcb_with_trace(g, use_ear=True)
    res = simulate_trace(trace, Platform.sequential())
    keys = ("labels", "scan", "update")
    total = sum(res.stage_times.get(k, 0.0) for k in keys)
    if total == 0:
        return {k: 0.0 for k in keys}
    return {k: res.stage_times.get(k, 0.0) / total for k in keys}


def run_phase_breakdown_wall(
    name: str = "cond_mat_2003", scale: float | None = None
) -> dict[str, float]:
    """Python wall-clock variant of the phase breakdown (for comparison)."""
    g = datasets.load(name, scale)
    from ..decomposition.biconnected import biconnected_components
    from ..decomposition.reduce import reduce_graph

    bcc = biconnected_components(g)
    cid = max(range(bcc.count), key=lambda c: bcc.component_edges[c].size)
    sub, _ = bcc.component_subgraph(g, cid)
    red = reduce_graph(sub)
    rep = MMReport()
    mm_mcb(red.graph, report=rep)
    return rep.fractions()
