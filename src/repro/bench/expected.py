"""Paper-reported values, for the paper-vs-measured columns.

All numbers transcribed from the IJNC 2018 text: Table 1 (memory MB),
Table 2 (MCB seconds, 'K' = thousands of seconds), and the average
speedups quoted in Sections 2.4.3 and 3.5.  Used by the benchmark
reporters and EXPERIMENTS.md; never by the algorithms.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_MEMORY_MB",
    "TABLE2_SECONDS",
    "FIG2_AVG_SPEEDUP",
    "FIG5_AVG_SPEEDUP",
    "EAR_SPEEDUP_BY_IMPL",
    "PHASE_FRACTIONS",
]

#: Table 1: (ours_mb, max_mb) per dataset.
TABLE1_MEMORY_MB: dict[str, tuple[int, int]] = {
    "nopoly": (443, 443),
    "OPF_3754": (873, 909),
    "ca-AstroPh": (970, 1344),
    "as-22july06": (851, 2012),
    "c-50": (651, 1914),
    "cond_mat_2003": (1826, 3705),
    "delaunay_n15": (4096, 4096),
    "Rajat26": (7176, 9934),
    "Wordnet3": (4663, 26071),
    "soc-signs-epinions": (12932, 66294),
    "Planar_1": (1278, 1296),
    "Planar_2": (1627, 1881),
    "Planar_3": (2068, 2275),
    "Planar_4": (3890, 4074),
    "Planar_5": (4350, 4942),
}

#: Table 2: seconds for {impl: (with_ear, without_ear)}; 'K' expanded.
TABLE2_SECONDS: dict[str, dict[str, tuple[float, float]]] = {
    "nopoly": {
        "sequential": (7830, 7830),
        "multicore": (2340, 2350),
        "gpu": (602, 604),
        "cpu+gpu": (624, 624),
    },
    "OPF_3754": {
        "sequential": (44580, 44580),
        "multicore": (11800, 11800),
        "gpu": (3800, 3800),
        "cpu+gpu": (3200, 3200),
    },
    "ca-AstroPh": {
        "sequential": (246300, 271300),
        "multicore": (75060, 81500),
        "gpu": (38040, 40150),
        "cpu+gpu": (27600, 27600),
    },
    "as-22july06": {
        "sequential": (570, 7400),
        "multicore": (170, 1800),
        "gpu": (134, 1290),
        "cpu+gpu": (90, 940),
    },
    "c-50": {
        "sequential": (17050, 28070),
        "multicore": (6170, 9800),
        "gpu": (2900, 4278),
        "cpu+gpu": (2020, 3030),
    },
    "cond_mat_2003": {
        "sequential": (141300, 177600),
        "multicore": (35900, 44200),
        "gpu": (14890, 17970),
        "cpu+gpu": (10900, 13200),
    },
    "delaunay_n15": {
        "sequential": (272500, 272500),
        "multicore": (59500, 59500),
        "gpu": (18370, 18370),
        "cpu+gpu": (15800, 15800),
    },
}

#: Figure 2 average speedups of "Our Approach".
FIG2_AVG_SPEEDUP = {"vs_banerjee_general": 1.7, "vs_djidjev_planar": 2.2}

#: Figure 5 average speedups over the sequential MCB implementation.
FIG5_AVG_SPEEDUP = {"multicore": 3.0, "gpu": 9.0, "cpu+gpu": 11.0}

#: Section 3.5: average speedup *due to ear decomposition* per implementation.
EAR_SPEEDUP_BY_IMPL = {
    "sequential": 3.1,
    "multicore": 2.7,
    "gpu": 2.5,
    "cpu+gpu": 2.7,
}

#: Section 3.5: share of MCB processing time per step.
PHASE_FRACTIONS = {"labels": 0.76, "scan": 0.14, "update": 0.08}
