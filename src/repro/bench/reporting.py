"""Plain-text reporting: aligned tables and paper-vs-measured summaries."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_kv", "ratio_note"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.3g}",
) -> str:
    """Monospace table with auto-sized columns."""

    def cell(x: object) -> str:
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    headers = [str(h) for h in headers]
    body: list[list[str]] = []
    for i, row in enumerate(rows):
        cells = [cell(x) for x in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"format_table: row {i} has {len(cells)} cell(s), "
                f"expected {len(headers)} (row={list(row)!r})"
            )
        body.append(cells)
    widths = [len(h) for h in headers]
    for cells in body:
        for j, c in enumerate(cells):
            if len(c) > widths[j]:
                widths[j] = len(c)
    lines = []
    if title:
        lines.append(title)
    # The separator is built from the same widths as the header row, so
    # the two always align — including the empty-rows case, where widths
    # come from the headers alone.
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for cells in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_kv(pairs: dict[str, object], title: str = "") -> str:
    """Key/value block."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs.items():
        sval = f"{v:.4g}" if isinstance(v, float) else str(v)
        lines.append(f"  {k.ljust(width)} : {sval}")
    return "\n".join(lines)


def ratio_note(label: str, paper: float, measured: float) -> str:
    """One paper-vs-measured comparison line."""
    return (
        f"{label}: paper={paper:.3g}  measured={measured:.3g}  "
        f"(measured/paper={measured / paper:.2f})"
    )
