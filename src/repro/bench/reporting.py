"""Plain-text reporting: aligned tables and paper-vs-measured summaries."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_kv", "ratio_note"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.3g}",
) -> str:
    """Monospace table with auto-sized columns."""

    def cell(x: object) -> str:
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    body = [[cell(x) for x in row] for row in rows]
    cols = [list(col) for col in zip(*( [list(headers)] + body ))] if body else [[h] for h in headers]
    widths = [max(len(c) for c in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(pairs: dict[str, object], title: str = "") -> str:
    """Key/value block."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs.items():
        sval = f"{v:.4g}" if isinstance(v, float) else str(v)
        lines.append(f"  {k.ljust(width)} : {sval}")
    return "\n".join(lines)


def ratio_note(label: str, paper: float, measured: float) -> str:
    """One paper-vs-measured comparison line."""
    return (
        f"{label}: paper={paper:.3g}  measured={measured:.3g}  "
        f"(measured/paper={measured / paper:.2f})"
    )
