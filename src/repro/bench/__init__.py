"""Benchmark support: metrics, paper-expected values, harness, reporting."""

from . import expected
from .harness import (
    Fig2Row,
    Table1Row,
    Table2Row,
    ear_speedup_by_impl,
    run_fig2,
    run_fig3,
    run_fig5,
    run_fig6,
    run_phase_breakdown,
    run_table1,
    run_table2,
)
from .metrics import geomean, geometric_mean, mteps, speedup
from .reporting import format_kv, format_table, ratio_note

__all__ = [
    "expected",
    "Fig2Row",
    "Table1Row",
    "Table2Row",
    "ear_speedup_by_impl",
    "run_fig2",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_phase_breakdown",
    "run_table1",
    "run_table2",
    "geomean",
    "geometric_mean",
    "mteps",
    "speedup",
    "format_kv",
    "format_table",
    "ratio_note",
]
