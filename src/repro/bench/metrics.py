"""Benchmark metrics.

MTEPS is defined as in the paper (Section 2.4.3): "the ratio of the
product of the number of edges and number of vertices over the time taken
in seconds" — i.e. traversed edges of an APSP-like computation, in
millions per second.  Higher is more scalable.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["mteps", "speedup", "geometric_mean"]


def mteps(n: int, m: int, seconds: float) -> float:
    """Million traversed edges per second for an all-sources traversal."""
    if seconds <= 0:
        return float("inf")
    return (float(m) * float(n)) / seconds / 1e6


def speedup(baseline_seconds: float, ours_seconds: float) -> float:
    """How many times faster ours is than the baseline."""
    if ours_seconds <= 0:
        return float("inf")
    return baseline_seconds / ours_seconds


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the right average for speedups)."""
    vals = [v for v in values if v > 0 and math.isfinite(v)]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
