"""Benchmark metrics.

MTEPS is defined as in the paper (Section 2.4.3): "the ratio of the
product of the number of edges and number of vertices over the time taken
in seconds" — i.e. traversed edges of an APSP-like computation, in
millions per second.  Higher is more scalable.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["mteps", "speedup", "geomean", "geometric_mean"]


def mteps(n: int, m: int, seconds: float) -> float:
    """Million traversed edges per second for an all-sources traversal.

    Raises :class:`ValueError` on nonpositive ``seconds`` rather than
    returning ``inf``: a silent infinity poisons geometric means and JSON
    reports downstream, and a measured time of zero always indicates a
    harness bug (a ``perf_counter`` delta over real work is never zero).
    """
    if seconds <= 0:
        raise ValueError(f"mteps needs a positive time, got {seconds!r}")
    return (float(m) * float(n)) / seconds / 1e6


def speedup(baseline_seconds: float, ours_seconds: float) -> float:
    """How many times faster ours is than the baseline.

    Raises :class:`ValueError` on nonpositive ``ours_seconds`` (see
    :func:`mteps` for why this is an error, not ``inf``).
    """
    if ours_seconds <= 0:
        raise ValueError(f"speedup needs a positive time, got {ours_seconds!r}")
    return baseline_seconds / ours_seconds


def geomean(values: Iterable[float]) -> float:
    """Strict geometric mean (the right average for speedups).

    Raises :class:`ValueError` on empty input and on nonpositive or
    non-finite values: a summary geomean silently computed over nothing
    (or poisoned by an ``inf``) is exactly the kind of wrong number that
    ends up in a report.  Use :func:`geometric_mean` for exploratory code
    that wants the lenient filter-and-NaN behaviour.
    """
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geomean() requires at least one value")
    for v in vals:
        if not (v > 0 and math.isfinite(v)):
            raise ValueError(
                f"geomean() requires positive finite values, got {v!r}"
            )
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def geometric_mean(values: Iterable[float]) -> float:
    """Lenient geometric mean: filters nonpositive/non-finite, NaN on empty.

    Kept for exploratory benchmarks; harness summaries use the strict
    :func:`geomean` so an empty or poisoned average fails loudly.
    """
    vals = [v for v in values if v > 0 and math.isfinite(v)]
    if not vals:
        return float("nan")
    return geomean(vals)
