"""Figure 6 — absolute speeds of the four MCB implementations.

The companion view of Table 2: virtual seconds per implementation (with
ears), per dataset.  Expected shape: times ordered
sequential ≥ multicore ≥ {gpu, cpu+gpu}, with the ratios of Table 2's
'w' columns.
"""

import pytest

from repro.bench import format_table, run_fig6, run_table2
from repro.bench.harness import PLATFORM_NAMES


def test_fig6_absolute_speeds(benchmark, table2):
    rows = benchmark.pedantic(lambda: run_fig6(table2), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["graph"] + PLATFORM_NAMES,
            [(d["name"], *(d[p] for p in PLATFORM_NAMES)) for d in rows],
            title="Figure 6 (reproduced): absolute virtual seconds (with ears)",
        )
    )
    for d in rows:
        assert d["sequential"] >= d["cpu+gpu"] * 0.95, d["name"]
    benchmark.extra_info["fig6"] = {
        d["name"]: {p: round(d[p], 5) for p in PLATFORM_NAMES} for d in rows
    }


def test_fig6_wall_clock_companion(benchmark, table2):
    """Real Python wall time (ears on vs off) for reference."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["graph", "wall w/ ear (s)", "wall w/o ear (s)", "ratio"],
            [
                (r.name, r.wall_with_ear, r.wall_without_ear,
                 r.wall_without_ear / r.wall_with_ear)
                for r in table2
            ],
            title="Python wall-clock ear ablation (companion)",
        )
    )
