"""Table 2 — MCB times for the four implementations, with/without ears.

Runs the ear-reduced Mehlhorn–Michail pipeline on the first seven Table-1
stand-ins (the paper's MCB evaluation set), verifies every basis, and
replays the recorded kernel trace on the sequential / multicore / GPU /
CPU+GPU platform models.

Expected shapes (paper): the ear benefit is largest on sequential and
tracks the degree-2 fraction (as-22july06 ≈ 10×, nopoly ≈ 1×); the
virtual implementations order hetero ≤ gpu ≤ multicore ≤ sequential in
time.  Magnitudes are compressed at reduced scale (see EXPERIMENTS.md).
"""

import pytest

from repro.bench import expected, format_table, run_table2
from repro.bench.harness import PLATFORM_NAMES, ear_speedup_by_impl


def test_table2_rows(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    body = [
        (r.name, r.f, *(x for p in PLATFORM_NAMES for x in r.seconds[p]))
        for r in table2
    ]
    print(
        format_table(
            ["graph", "f", "seq w", "seq w/o", "mc w", "mc w/o",
             "gpu w", "gpu w/o", "het w", "het w/o"],
            body,
            title="Table 2 (reproduced, virtual seconds)",
        )
    )
    for r in table2:
        # ear decomposition never makes any implementation slower (beyond
        # scheduling noise)
        for p in PLATFORM_NAMES:
            w, wo = r.seconds[p]
            assert w <= wo * 1.05, (r.name, p)
        # paper-matching special cases: zero-degree-2 graphs see no change
        if r.name in ("nopoly", "OPF_3754", "delaunay_n15"):
            w, wo = r.seconds["sequential"]
            assert w / wo > 0.9
    # as-22july06 (77% removed) must show the biggest sequential ear win.
    by_name = {r.name: r for r in table2}
    as_ratio = by_name["as-22july06"].seconds["sequential"]
    np_ratio = by_name["nopoly"].seconds["sequential"]
    assert as_ratio[1] / as_ratio[0] > np_ratio[1] / np_ratio[0]
    benchmark.extra_info["rows"] = {
        r.name: {p: [round(x, 5) for x in r.seconds[p]] for p in PLATFORM_NAMES}
        for r in table2
    }


def test_table2_ear_speedup_by_impl(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ear = ear_speedup_by_impl(table2)
    print()
    print(
        format_table(
            ["implementation", "paper ear speedup", "measured"],
            [(p, expected.EAR_SPEEDUP_BY_IMPL[p], ear[p]) for p in PLATFORM_NAMES],
            title="Ear-decomposition speedup per implementation (Section 3.5)",
        )
    )
    assert ear["sequential"] >= 1.2  # clear sequential win on average
    # The paper's ordering: sequential benefits most from ears.
    assert ear["sequential"] >= max(ear["gpu"], ear["cpu+gpu"]) - 0.05
    benchmark.extra_info["ear_speedups"] = {k: round(v, 2) for k, v in ear.items()}


def test_table2_timing_kernel(benchmark, scale):
    """pytest-benchmark timing of one full ear-MCB solve."""
    from repro import datasets
    from repro.mcb import minimum_cycle_basis

    g = datasets.load("as-22july06", scale)
    benchmark.pedantic(minimum_cycle_basis, args=(g,), rounds=1, iterations=1)
