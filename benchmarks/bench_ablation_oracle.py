"""Ablation — three storage strategies for exact distance queries.

Section 2.3's memory claim, measured: the dense matrix, the per-BCC table
oracle (the paper's stated ``a² + Σ nᵢ²``), and the reduced-table oracle
(``a² + Σ (nᵢʳ)²`` + anchors).  Reports build time, bytes held, and query
throughput; all three must return identical distances.
"""

import time

import numpy as np
import pytest

from repro import datasets
from repro.apsp import DistanceOracle, ReducedDistanceOracle, ear_apsp_full
from repro.bench import format_table


@pytest.mark.parametrize("name", ["as-22july06", "cond_mat_2003"])
def test_oracle_storage_tradeoff(benchmark, scale, name):
    g = datasets.load(name, scale)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    t0 = time.perf_counter()
    dense = ear_apsp_full(g)
    t_dense = time.perf_counter() - t0
    t0 = time.perf_counter()
    full = DistanceOracle(g)
    t_full = time.perf_counter() - t0
    t0 = time.perf_counter()
    reduced = ReducedDistanceOracle(g)
    t_reduced = time.perf_counter() - t0

    rng = np.random.default_rng(0)
    pairs = rng.integers(0, g.n, size=(2000, 2))
    t0 = time.perf_counter()
    q_full = full.query_many(pairs)
    qps_full = len(pairs) / (time.perf_counter() - t0)
    t0 = time.perf_counter()
    q_red = reduced.query_many(pairs)
    qps_red = len(pairs) / (time.perf_counter() - t0)
    q_dense = dense[pairs[:, 0], pairs[:, 1]]

    for q in (q_full, q_red):
        assert np.allclose(
            np.nan_to_num(q, posinf=-1), np.nan_to_num(q_dense, posinf=-1), atol=1e-8
        )

    dense_bytes = g.n * g.n * 4
    print()
    print(
        format_table(
            ["store", "build (s)", "MB held", "queries/s"],
            [
                ("dense matrix", t_dense, dense_bytes / 2**20, float("inf")),
                ("per-BCC oracle", t_full, full.memory_bytes() / 2**20, qps_full),
                ("reduced oracle", t_reduced, reduced.memory_bytes() / 2**20, qps_red),
            ],
            title=f"{name}: storage strategies (all exact)",
        )
    )
    assert reduced.memory_bytes() <= full.memory_bytes() <= dense_bytes * 1.01
    benchmark.extra_info[name] = {
        "dense_mb": round(dense_bytes / 2**20, 3),
        "bcc_mb": round(full.memory_bytes() / 2**20, 3),
        "reduced_mb": round(reduced.memory_bytes() / 2**20, 3),
    }
