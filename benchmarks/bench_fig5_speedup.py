"""Figure 5 — relative speedup of Multicore / GPU / Hetero over Sequential.

Paper averages: ≈3× multicore, ≈9× GPU, ≈11× CPU+GPU.  At reduced dataset
scale the per-phase kernels are small so dispatch overheads compress the
parallel speedups (the paper's per-phase work is ~1000× larger); the
*ordering* hetero ≥ gpu and hetero ≥ multicore ≥ 1 must still hold, and
does.  EXPERIMENTS.md shows the numbers converging toward the paper's as
scale grows.
"""

import pytest

from repro.bench import expected, format_table, run_fig5, run_table2


def test_fig5_speedups(benchmark, table2):
    sp = benchmark.pedantic(lambda: run_fig5(table2), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["implementation", "paper speedup", "measured speedup"],
            [(k, expected.FIG5_AVG_SPEEDUP[k], v) for k, v in sp.items()],
            title="Figure 5 (reproduced): speedup over Sequential, with ears",
        )
    )
    # Shape: heterogeneous is the fastest implementation on average.
    assert sp["cpu+gpu"] >= sp["multicore"] * 0.95
    assert sp["cpu+gpu"] >= 1.0
    benchmark.extra_info["fig5"] = {k: round(v, 2) for k, v in sp.items()}


def test_fig5_per_dataset_ordering(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for r in table2:
        seq = r.seconds["sequential"][0]
        rows.append(
            (r.name, 1.0, seq / r.seconds["multicore"][0],
             seq / r.seconds["gpu"][0], seq / r.seconds["cpu+gpu"][0])
        )
    print()
    print(
        format_table(
            ["graph", "seq", "multicore", "gpu", "cpu+gpu"],
            rows,
            title="Per-dataset speedup over sequential",
        )
    )
    # hetero at least matches the better single device on most datasets
    wins = sum(1 for _, _, mc, gpu, het in rows if het >= max(mc, gpu) * 0.9)
    assert wins >= len(rows) - 1
