"""Ablation — dynamic double-ended work queue vs static splits (§2.3).

The paper chose the [19] queue because "a static approach for work
balancing can fall short".  This ablation replays a skewed work-unit
distribution (a few huge BCC-sized units plus many small ones, as in the
real datasets) under (a) the dynamic queue, (b) a static 50/50 split, and
(c) a static bandwidth-proportional split — the dynamic queue's makespan
must beat or match the best static one.
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.hetero import (
    HeterogeneousExecutor,
    Platform,
    WorkUnit,
    cpu_device,
    gpu_device,
)


def skewed_units(seed=0, n_small=120, n_big=6):
    rng = np.random.default_rng(seed)
    works = np.concatenate(
        [rng.uniform(1e6, 5e6, n_small), rng.uniform(4e8, 9e8, n_big)]
    )
    return [
        WorkUnit(uid=i, fn=lambda: None, work=float(w), items=20_000)
        for i, w in enumerate(works)
    ]


def static_split_makespan(units, frac_to_gpu):
    """Assign the biggest `frac` of work to the GPU up front."""
    cpu, gpu = cpu_device(), gpu_device()
    ordered = sorted(units, key=lambda u: -u.work)
    total = sum(u.work for u in units)
    gpu_units, cpu_units, acc = [], [], 0.0
    for u in ordered:
        if acc < frac_to_gpu * total:
            gpu_units.append(u)
            acc += u.work
        else:
            cpu_units.append(u)
    t_gpu = sum(gpu.cost([u]) for u in gpu_units)
    t_cpu = sum(cpu.cost([u]) for u in cpu_units)
    return max(t_gpu, t_cpu)


def dynamic_makespan(units):
    plat = Platform.heterogeneous()
    ex = HeterogeneousExecutor(plat)
    return ex.run_stage(list(units)).makespan


def test_dynamic_queue_beats_static(benchmark):
    units = skewed_units()
    dyn = benchmark.pedantic(lambda: dynamic_makespan(units), rounds=1, iterations=1)
    static_half = static_split_makespan(units, 0.5)
    # bandwidth-proportional "oracle" static split
    from repro.hetero.device import CPU_SOCKET_BW, GPU_EFFECTIVE_BW

    frac = GPU_EFFECTIVE_BW / (GPU_EFFECTIVE_BW + CPU_SOCKET_BW)
    static_prop = static_split_makespan(units, frac)
    print()
    print(
        format_table(
            ["scheduler", "makespan (s)"],
            [
                ("dynamic deque [19]", dyn),
                ("static 50/50", static_half),
                ("static bandwidth-proportional", static_prop),
            ],
            title="Work scheduling ablation",
        )
    )
    # The paper's claim: dynamic balancing beats a naive static split.
    assert dyn <= static_half * 1.05
    # The bandwidth-proportional split is an *oracle* (it knows the exact
    # device rates a priori); dynamic must stay in its ballpark.
    assert dyn <= static_prop * 1.5
    benchmark.extra_info["makespans"] = {
        "dynamic": dyn,
        "static_half": static_half,
        "static_prop": static_prop,
    }


def test_gpu_gets_big_units(benchmark):
    """The sorted deque serves big units to the GPU end, as specified."""
    units = skewed_units(seed=3)
    plat = Platform.heterogeneous()
    ex = HeterogeneousExecutor(plat)

    taken = {"cpu": [], "gpu": []}
    for d in plat.devices:
        orig = d.execute

        def wrapped(batch, d=d, orig=orig):
            taken[d.name] += [u.work for u in batch]
            return orig(batch)

        d.execute = wrapped
    benchmark.pedantic(lambda: ex.run_stage(list(units)), rounds=1, iterations=1)
    assert max(taken["gpu"]) >= max(taken["cpu"])
    assert np.mean(taken["gpu"]) > np.mean(taken["cpu"])
