"""Table 1 — dataset structure and the O(a² + Σ nᵢ²) memory model.

Regenerates every row of Table 1 on the stand-ins: |V|, |E|, #BCCs,
largest-BCC %, nodes-removed %, and both memory columns.  The assertion
mirrors the paper's point: our storage never exceeds the dense table and
the savings concentrate on the fragmented / chain-heavy datasets
(Wordnet3, soc-sign-epinions, cond_mat).
"""

from repro.bench import expected, format_table, run_table1


def test_table1_structure(benchmark, scale):
    rows = benchmark.pedantic(lambda: run_table1(scale=scale), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["graph", "|V|", "|E|", "#BCC", "largest%", "removed%",
             "ours MB", "reduced MB", "max MB"],
            [
                (r.name, r.n, r.m, r.n_bcc, r.largest_bcc_pct,
                 r.nodes_removed_pct, r.ours_mb, r.reduced_mb, r.max_mb)
                for r in rows
            ],
            title="Table 1 (reproduced)",
        )
    )
    savings = {}
    red_savings = {}
    for r in rows:
        assert r.ours_mb <= r.max_mb * (1 + 1e-9), r.name
        assert r.reduced_mb <= r.ours_mb * (1 + 1e-9), r.name
        savings[r.name] = r.max_mb / r.ours_mb if r.ours_mb else float("inf")
        red_savings[r.name] = r.max_mb / r.reduced_mb if r.reduced_mb else float("inf")
    paper_saving = {
        name: mx / ours for name, (ours, mx) in expected.TABLE1_MEMORY_MB.items()
    }
    # The paper's biggest savers: fragmented graphs save under the stated
    # per-BCC formula; chain-heavy single-BCC graphs (c-50) only under the
    # reduced-table accounting (see EXPERIMENTS.md).
    for name in ("Wordnet3", "soc-signs-epinions"):
        assert savings[name] > 1.1, (name, savings[name])
    for name in ("c-50", "as-22july06", "Wordnet3"):
        assert red_savings[name] > 1.5, (name, red_savings[name])
    print()
    print(
        format_table(
            ["graph", "paper saving x", "per-BCC model x", "reduced model x"],
            [(n, paper_saving[n], savings[n], red_savings[n]) for n in savings],
            title="Memory saving factor: paper vs measured",
        )
    )
    benchmark.extra_info["savings"] = {k: round(v, 2) for k, v in savings.items()}
