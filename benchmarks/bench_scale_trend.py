"""Scale-convergence check for the virtual platform speedups.

The paper's graphs are 10–130K vertices; the default benches run at a few
percent of that, which compresses the Figure-5 parallel speedups (per-phase
kernels become dispatch-overhead bound).  This bench runs the flagship
chain-heavy dataset (as-22july06, 77% removable) at three growing scales
and checks that every parallel implementation's speedup over sequential
*increases with scale* — i.e. the measured numbers converge toward the
paper's as the workload grows, which is the fidelity claim EXPERIMENTS.md
makes quantitative.
"""

import pytest

from repro import datasets
from repro.bench import format_table
from repro.hetero import run_mcb_on_platforms

SCALES = [0.02, 0.045, 0.08]


def test_speedup_grows_with_scale(benchmark):
    def run():
        rows = []
        for s in SCALES:
            g = datasets.load("as-22july06", scale=s)
            res = run_mcb_on_platforms(g, use_ear=True)
            sp = res.speedups_vs_sequential()
            rows.append((s, g.n, sp["multicore"], sp["gpu"], sp["cpu+gpu"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["scale", "|V|", "multicore x", "gpu x", "cpu+gpu x"],
            rows,
            title="as-22july06: Figure-5 speedups vs dataset scale (paper: 3/9/11)",
        )
    )
    for col in (2, 3, 4):
        series = [r[col] for r in rows]
        assert series[-1] > series[0], ("speedup should grow with scale", col, series)
    # at the largest scale the ordering and a hetero win must be visible
    _, _, mc, gpu, het = rows[-1]
    assert het >= max(mc, gpu) * 0.95
    assert het > 2.0
    benchmark.extra_info["trend"] = [
        {"scale": s, "multicore": round(a, 2), "gpu": round(b, 2), "hetero": round(c, 2)}
        for s, _, a, b, c in rows
    ]
