"""Bulk-SSSP engine — adjacency cache + chunked dispatch micro-benchmarks.

The workload the engine optimises: many SSSPs against the same frozen
graph (per-BCC APSP, oracle construction, MCB restarts).  Three shapes are
measured and checked:

* rebuilding the scipy adjacency per source (the pre-cache behaviour) vs
  one cached, chunked ``multi_source`` call — must be >= 2x;
* chunk-size sweep — all chunkings bit-identical, timings reported;
* the process-parallel backend vs the serial engine — bit-identical, with
  the wall-clock ratio recorded honestly (it can only win on multi-core
  hosts; this environment has one core).
"""

import os

import numpy as np
import pytest

from repro import datasets
from repro.hetero.parallel import ParallelEngine, resolve_workers
from repro.sssp import engine


@pytest.fixture(scope="module")
def graph(scale):
    return datasets.load("as-22july06", scale)


def test_cache_vs_rebuild(benchmark, graph):
    import time

    sources = np.arange(min(graph.n, 256), dtype=np.int64)
    engine.adjacency_cache().clear()
    t0 = time.perf_counter()
    for s in sources:
        engine.sssp(graph, int(s), cache=False)
    t_uncached = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = engine.multi_source(graph, sources)
    t_cached = time.perf_counter() - t0
    cold = np.vstack([engine.sssp(graph, int(s), cache=False) for s in sources])
    assert np.array_equal(warm, cold)
    benchmark.pedantic(lambda: engine.multi_source(graph, sources), rounds=1, iterations=1)
    ratio = t_uncached / t_cached if t_cached else float("inf")
    print(f"\nrepeated-sssp: rebuild-per-source / cached+chunked = {ratio:.1f}x")
    assert ratio >= 2.0
    benchmark.extra_info["cached_chunked_speedup"] = round(ratio, 2)


def test_chunk_size_sweep(benchmark, graph):
    sources = np.arange(min(graph.n, 256), dtype=np.int64)
    reference = engine.multi_source(graph, sources, chunk_size=len(sources))
    import time

    timings = {}
    for chunk in (1, 8, 32, 128):
        t0 = time.perf_counter()
        out = engine.multi_source(graph, sources, chunk_size=chunk)
        timings[chunk] = time.perf_counter() - t0
        assert np.array_equal(out, reference)
    benchmark.pedantic(
        lambda: engine.multi_source(graph, sources), rounds=3, iterations=1
    )
    print()
    for chunk, t in timings.items():
        print(f"chunk={chunk:>4}: {t:.3f}s")
    benchmark.extra_info["chunk_timings_s"] = {
        str(k): round(v, 4) for k, v in timings.items()
    }


def test_parallel_backend_parity(benchmark, graph):
    serial = engine.all_pairs(graph)
    with ParallelEngine(graph, workers=2) as eng:
        out = benchmark.pedantic(eng.all_pairs, rounds=1, iterations=1)
        result = eng.all_pairs()
    assert np.array_equal(result, serial)
    benchmark.extra_info["host_cores"] = resolve_workers(None)
    benchmark.extra_info["env_workers"] = os.environ.get("REPRO_WORKERS", "")
