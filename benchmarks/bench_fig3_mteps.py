"""Figure 3 — MTEPS (|E|·|V| / seconds / 1e6) for the Figure 2 runs.

Expected shape: "Our Approach" posts higher MTEPS than the corresponding
baseline on the same graphs it wins on in Figure 2, and MTEPS grows with
graph size (the metric rewards scalability).
"""

import pytest

from repro.bench import format_table, run_fig2, run_fig3


SUBSET = [
    "nopoly", "as-22july06", "c-50", "cond_mat_2003",
    "Wordnet3", "Planar_1", "Planar_3", "Planar_5",
]


@pytest.fixture(scope="module")
def rows(fig2_rows):
    return [r for r in fig2_rows if r.name in SUBSET]


def test_fig3_mteps(benchmark, rows):
    series = benchmark.pedantic(lambda: run_fig3(rows), rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["graph", "kind", "MTEPS ours", "MTEPS baseline", "ratio"],
            [
                (d["name"], d["kind"], d["mteps_ours"], d["mteps_baseline"],
                 d["mteps_ours"] / d["mteps_baseline"])
                for d in series
            ],
            title="Figure 3 (reproduced)",
        )
    )
    by_name = {d["name"]: d for d in series}
    # Chain-heavy general graphs must be more scalable under our approach.
    for name in ("as-22july06", "c-50", "Wordnet3"):
        assert by_name[name]["mteps_ours"] > by_name[name]["mteps_baseline"], name
    benchmark.extra_info["mteps"] = {
        d["name"]: round(d["mteps_ours"], 1) for d in series
    }
