"""Benchmark configuration.

``REPRO_BENCH_SCALE`` controls the stand-in dataset sizes (fraction of the
paper's |V|/|E|; default 0.04).  Structure percentages are scale-invariant
so speedup *shapes* are comparable at any scale; absolute seconds are not
comparable to the paper's multi-hour runs.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", 0.04))


@pytest.fixture(scope="session")
def table2(scale):
    """Shared Table-2 computation (used by table2/fig5/fig6 benches)."""
    from repro.bench import run_table2

    return run_table2(scale=scale)


@pytest.fixture(scope="session")
def fig2_rows(scale):
    """Shared Figure-2 computation (used by fig2/fig3 benches)."""
    from repro.bench import run_fig2

    return run_fig2(scale=scale)


def pytest_report_header(config):
    return f"repro benchmarks: REPRO_BENCH_SCALE={os.environ.get('REPRO_BENCH_SCALE', 0.04)}"
