"""Ablation — the hybrid candidate store of Section 3.3.2.

The paper motivates the block/array hybrid ("linked-lists are lacking in
efficiency due to higher penalty in access times"): this ablation sweeps
the block size and measures the scan wall time of a full MCB run, plus
the store's own counters (batches visited, compaction events).
"""

import time

import pytest

from repro import datasets
from repro.bench import format_table
from repro.mcb import MMReport, mm_mcb
from repro.decomposition import biconnected_components, reduce_graph


@pytest.fixture(scope="module")
def reduced(scale):
    g = datasets.load("c-50", scale)
    bcc = biconnected_components(g)
    cid = max(range(bcc.count), key=lambda c: bcc.component_edges[c].size)
    sub, _ = bcc.component_subgraph(g, cid)
    return reduce_graph(sub).graph


def test_block_size_sweep(benchmark, reduced):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    weights = []
    for block in (16, 128, 512, 4096):
        rep = MMReport()
        t0 = time.perf_counter()
        cycles = mm_mcb(reduced, block_size=block, report=rep)
        wall = time.perf_counter() - t0
        weights.append(sum(c.weight for c in cycles))
        rows.append((block, wall, rep.t_scan, rep.n_candidates))
    print()
    print(
        format_table(
            ["block size", "total wall (s)", "scan wall (s)", "#candidates"],
            rows,
            title="Candidate store block-size sweep",
        )
    )
    # correctness is block-size independent
    assert max(weights) - min(weights) < 1e-6 * max(weights)
    benchmark.extra_info["sweep"] = [
        {"block": b, "wall": round(w, 4)} for b, w, _, _ in rows
    ]


def test_store_counters(benchmark, reduced):
    """One phase-by-phase run exposing batches/compactions."""
    from repro.mcb.mehlhorn_michail import MMContext
    from repro.mcb import gf2
    import numpy as np

    def run():
        ctx = MMContext(reduced, block_size=128)
        store = ctx.new_store()
        witnesses = np.zeros((ctx.f, gf2.n_words(ctx.f)), dtype=np.uint64)
        for i in range(ctx.f):
            witnesses[i] = gf2.unit(ctx.f, i)
        for i in range(ctx.f):
            s_pad = ctx.witness_edge_bits(witnesses[i])
            labels = ctx.compute_labels(s_pad)
            cand = store.scan_and_remove(ctx.scan_predicate(labels, s_pad))
            assert cand is not None
            _, c_vec = ctx.reconstruct(cand)
            ctx.update_witnesses(witnesses, i, c_vec)
        return store.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nbatches visited={stats.batches_visited} "
        f"candidates tested={stats.candidates_tested} "
        f"compactions={stats.compactions}"
    )
    assert stats.batches_visited > 0
    # early exit pays off: far fewer candidate tests than phases x store
    assert stats.candidates_tested > 0
