"""Section 3.5 phase breakdown — labels 76% / min-cycle 14% / update 8%.

Reproduces the paper's claim that Algorithm-3 label computation dominates
the MCB processing time, which is why the label stage is the main
parallelisation target and why dependent stages cap the available
parallelism.
"""

import pytest

from repro.bench import expected, format_kv, run_phase_breakdown


@pytest.mark.parametrize("name", ["cond_mat_2003", "c-50"])
def test_phase_breakdown(benchmark, scale, name):
    frac = benchmark.pedantic(
        lambda: run_phase_breakdown(name, scale=scale), rounds=1, iterations=1
    )
    print()
    print(format_kv(frac, title=f"{name}: modeled kernel-time shares"))
    print(format_kv(expected.PHASE_FRACTIONS, title="paper"))
    # Shape: labels dominate, update is the smallest or near it.
    assert frac["labels"] == max(frac.values())
    assert frac["labels"] > 0.4
    benchmark.extra_info[name] = {k: round(v, 3) for k, v in frac.items()}
