"""Figure 2 — APSP wall-clock: Our Approach vs Banerjee [4] and Djidjev [12].

Every run cross-checks 500 random distances between the two matrices
before timing is reported.  Expected shape (paper): ours wins on average
(≈1.7× general, ≈2.2× planar) with the margin growing with the degree-2
fraction; near-zero-degree-2 graphs (nopoly, delaunay) are ~breakeven.
"""

import pytest

from repro.bench import expected, format_table, geometric_mean, run_fig2


def test_fig2_general_graphs(benchmark, fig2_rows):
    rows = [r for r in fig2_rows if r.kind == "general"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["graph", "t_ours(s)", "t_banerjee(s)", "speedup", "removed%"],
            [(r.name, r.t_ours, r.t_baseline, r.speedup, r.nodes_removed_pct) for r in rows],
            title="Figure 2 (general graphs)",
        )
    )
    avg = geometric_mean(r.speedup for r in rows)
    print(f"avg speedup: measured {avg:.2f}x, paper {expected.FIG2_AVG_SPEEDUP['vs_banerjee_general']}x")
    # Shape assertions: the chain-heavy graphs must show clear wins.
    heavy = [r for r in rows if r.nodes_removed_pct > 40]
    assert all(r.speedup > 1.0 for r in heavy)
    # and the margin must grow with removed%
    light_avg = geometric_mean(r.speedup for r in rows if r.nodes_removed_pct < 10)
    heavy_avg = geometric_mean(r.speedup for r in heavy)
    assert heavy_avg > light_avg
    benchmark.extra_info["avg_speedup_vs_banerjee"] = round(avg, 3)


def test_fig2_planar_graphs(benchmark, fig2_rows):
    rows = [r for r in fig2_rows if r.kind == "planar"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["graph", "t_ours(s)", "t_djidjev(s)", "speedup", "removed%"],
            [(r.name, r.t_ours, r.t_baseline, r.speedup, r.nodes_removed_pct) for r in rows],
            title="Figure 2 (planar graphs)",
        )
    )
    avg = geometric_mean(r.speedup for r in rows)
    print(f"avg speedup: measured {avg:.2f}x, paper {expected.FIG2_AVG_SPEEDUP['vs_djidjev_planar']}x")
    assert avg > 0.8  # never catastrophically slower
    benchmark.extra_info["avg_speedup_vs_djidjev"] = round(avg, 3)


def test_fig2_timing_kernel(benchmark, scale):
    """pytest-benchmark timing of the headline pipeline on one dataset."""
    from repro import datasets
    from repro.apsp import ear_apsp_full

    g = datasets.load("as-22july06", scale)
    benchmark(ear_apsp_full, g)
