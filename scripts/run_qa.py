#!/usr/bin/env python
"""Run the conformance suite with invariants armed and artifacts saved.

Wraps ``python -m pytest -m qa`` with:

* ``REPRO_CHECK_INVARIANTS=1`` so every mid-pipeline structural contract
  (ear partition, reduction maximality, basis independence, de Pina
  witness orthogonality) is checked while the differential oracle runs;
* ``REPRO_QA_ARTIFACTS`` pointed at an artifact directory so any
  disagreeing graph is serialized (``repro.graph.io`` npz + context json)
  and can be replayed exactly.

Usage::

    python scripts/run_qa.py [--artifacts DIR] [--seed N] [pytest args...]

Extra arguments are forwarded to pytest (e.g. ``-k faultinject -x``).
Exits with pytest's status; on failure the saved artifacts are listed.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts",
        default=str(REPO_ROOT / "qa-artifacts"),
        help="directory for disagreeing-graph repro files (default: ./qa-artifacts)",
    )
    parser.add_argument("--seed", type=int, default=None, help="session seed (--repro-seed)")
    args, pytest_args = parser.parse_known_args(argv)

    env = dict(os.environ)
    env["REPRO_CHECK_INVARIANTS"] = "1"
    env["REPRO_QA_ARTIFACTS"] = args.artifacts
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")

    cmd = [sys.executable, "-m", "pytest", "-m", "qa", "-q"]
    if args.seed is not None:
        cmd.append(f"--repro-seed={args.seed}")
    cmd += pytest_args

    print(f"$ REPRO_CHECK_INVARIANTS=1 REPRO_QA_ARTIFACTS={args.artifacts} {' '.join(cmd)}")
    status = subprocess.call(cmd, cwd=REPO_ROOT, env=env)

    artifacts = sorted(Path(args.artifacts).glob("*")) if Path(args.artifacts).exists() else []
    if status != 0 and artifacts:
        print("\nsaved failing-graph artifacts (replay with repro.graph.load_npz):")
        for p in artifacts:
            print(f"  {p}")
    elif status == 0:
        print("conformance OK (invariants on, zero disagreements)")
    return status


if __name__ == "__main__":
    sys.exit(main())
