#!/usr/bin/env bash
# Regenerate every artifact of the reproduction from scratch.
#
#   REPRO_BENCH_SCALE=0.04 ./scripts/run_full_evaluation.sh
#
# Produces test_output.txt and bench_output.txt in the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== benchmarks (every paper table/figure + ablations) =="
python -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt

echo "== examples =="
for f in examples/*.py; do
    echo "--- $f"
    python "$f"
done
