#!/usr/bin/env python
"""Smoke benchmark: engine caching/chunking + parallel backend + paper rows.

Runs in well under a minute and writes ``BENCH_BASELINE.json`` at the repo
root, giving every change to the bulk-SSSP engine a before/after anchor:

* ``repeated_sssp`` — the workload the adjacency cache + chunked dispatch
  target: many SSSPs on one graph.  ``uncached_per_source`` rebuilds the
  scipy adjacency for every source (the pre-cache behaviour);
  ``cached_chunked`` is one ``multi_source`` call through the cache.
* ``parallel`` — process-pool APSP vs the serial engine on the same graph,
  with the host core count recorded (on a single-core host the pool cannot
  win; the number is recorded honestly, not asserted).
* ``bulk_query`` — vectorized oracle ``query_many`` vs the scalar per-pair
  loop on a chain-heavy theta graph, checked bit-identical first.
* ``critpath`` — critical-path length and span-based parallel efficiency
  of a recorded 2-worker run (``repro.obs.critpath``); the regression
  gate watches both, efficiency on the higher-is-better side.
* ``fig2`` / ``table2`` — tiny-scale rows of the two headline paper
  benchmarks, correctness-checked by the harness itself.

Usage: ``PYTHONPATH=src python scripts/bench_smoke.py [--scale 0.02]``
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent


def _time(fn, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_repeated_sssp(scale: float) -> dict:
    from repro import datasets
    from repro.bench.metrics import speedup
    from repro.sssp import engine

    g = datasets.load("as-22july06", scale)
    sources = np.arange(min(g.n, 256), dtype=np.int64)

    def uncached() -> None:
        for s in sources:
            engine.sssp(g, int(s), cache=False)

    def cached_chunked() -> None:
        engine.multi_source(g, sources)

    engine.adjacency_cache().clear()
    t_uncached = _time(uncached, repeat=1)
    t_cached = _time(cached_chunked)
    info = engine.adjacency_cache().info()
    return {
        "graph": {"name": "as-22july06", "n": g.n, "m": g.m},
        "sources": int(sources.size),
        "uncached_per_source_s": t_uncached,
        "cached_chunked_s": t_cached,
        "speedup": speedup(t_uncached, t_cached),
        "cache": {"hits": info.hits, "misses": info.misses},
    }


def bench_parallel(scale: float) -> dict:
    from repro import datasets
    from repro.bench.metrics import speedup
    from repro.hetero.parallel import ParallelEngine, resolve_workers
    from repro.sssp import engine

    g = datasets.load("OPF_3754", scale)
    t_serial = _time(lambda: engine.all_pairs(g))
    with ParallelEngine(g, workers=2) as eng:
        live = eng.is_parallel
        t_parallel = _time(eng.all_pairs)
        parity = bool(np.array_equal(eng.all_pairs(), engine.all_pairs(g)))
    return {
        "graph": {"name": "OPF_3754", "n": g.n, "m": g.m},
        "host_cores": resolve_workers(None),
        "pool_workers": 2,
        "pool_live": live,
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": speedup(t_serial, t_parallel),
        "bit_identical": parity,
    }


def bench_bulk_query(scale: float) -> dict:
    """Vectorized ``query_many`` vs the scalar loop on a chain-heavy graph.

    The theta-graph family is the oracle's worst case for per-pair Python
    dispatch (every pair touches the chain formulas), so it is where the
    vectorized classification pays off most honestly.  Results are checked
    bit-identical before either timing is recorded.
    """
    from repro.apsp.reduced_oracle import ReducedDistanceOracle
    from repro.bench.metrics import speedup
    from repro.qa.strategies import theta_graph

    n_chains, chain_len = 6, max(8, int(2000 * scale))
    g = theta_graph(n_chains=n_chains, chain_len=chain_len, seed=7)
    oracle = ReducedDistanceOracle(g)
    rng = np.random.default_rng(7)
    pairs = rng.integers(0, g.n, size=(20_000, 2), dtype=np.int64)
    parity = bool(
        np.array_equal(oracle.query_many(pairs), oracle.query_many_scalar(pairs))
    )
    t_scalar = _time(lambda: oracle.query_many_scalar(pairs), repeat=1)
    t_vector = _time(lambda: oracle.query_many(pairs))
    return {
        "graph": {"name": f"theta-{n_chains}x{chain_len}", "n": g.n, "m": g.m},
        "pairs": int(pairs.shape[0]),
        "scalar_s": t_scalar,
        "vectorized_s": t_vector,
        "scalar_pairs_per_s": pairs.shape[0] / t_scalar,
        "vectorized_pairs_per_s": pairs.shape[0] / t_vector,
        "speedup": speedup(t_scalar, t_vector),
        "bit_identical": parity,
    }


def bench_sampler_overhead(scale: float) -> dict:
    """Oracle serving throughput with the stack sampler off vs armed.

    The continuous profiler's contract is "cheap enough to leave on": a
    daemon thread waking at ~97 Hz against a query workload that holds
    the GIL in NumPy kernels most of the time.  ``overhead_frac`` is the
    fractional slowdown of ``query_many`` with sampling armed; the
    regression gate in CI holds it under 5%.

    Measurement note: the sample itself costs ~20 us, so on a multi-core
    host the sampler rides a spare core and the true overhead is well
    under 1%.  On a *single*-core host any periodically waking thread
    costs a few percent of scheduler/GIL churn regardless of what it
    does, and wall-clock noise is the same order — hence the alternating
    off/on rounds below.  The CI gate runs on multi-core runners.
    """
    import tempfile

    from repro.apsp.reduced_oracle import ReducedDistanceOracle
    from repro.obs.sampler import DEFAULT_HZ, read_profile, sampling_to
    from repro.qa.strategies import theta_graph

    n_chains, chain_len = 6, max(8, int(2000 * scale))
    g = theta_graph(n_chains=n_chains, chain_len=chain_len, seed=7)
    oracle = ReducedDistanceOracle(g)
    rng = np.random.default_rng(11)
    pairs = rng.integers(0, g.n, size=(20_000, 2), dtype=np.int64)

    def serve() -> None:
        for _ in range(40):
            oracle.query_many(pairs)

    serve()  # warm the bulk index so neither timing pays the build
    # Interleave the off/on windows and alternate which side goes first
    # each round, keeping the best of each: CPU warm-up / frequency drift
    # and within-round position bias then cancel instead of flattering
    # whichever side happens to run later.
    t_off = t_on = float("inf")
    samples = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(9):
            def timed_on() -> float:
                nonlocal samples
                shard_dir = f"{tmp}/{i}"
                with sampling_to(shard_dir, hz=DEFAULT_HZ):
                    t = _time(serve, repeat=1)
                samples += sum(read_profile(shard_dir).values())
                return t

            if i % 2 == 0:
                t_off = min(t_off, _time(serve, repeat=1))
                t_on = min(t_on, timed_on())
            else:
                t_on = min(t_on, timed_on())
                t_off = min(t_off, _time(serve, repeat=1))
    return {
        "graph": {"name": f"theta-{n_chains}x{chain_len}", "n": g.n, "m": g.m},
        "pairs": int(pairs.shape[0]),
        "hz": float(DEFAULT_HZ),
        "disabled_s": t_off,
        "enabled_s": t_on,
        "overhead_frac": t_on / t_off - 1.0 if t_off else 0.0,
        "samples": int(samples),
    }


def bench_critpath(scale: float) -> dict:
    """Critical-path attribution of a recorded 2-worker parallel run.

    Records a real ``ParallelEngine`` run (two dispatches, two workers)
    under a root span, then runs the offline span-DAG analyzer on the
    collected trace.  ``length_ns`` and ``parallel_efficiency`` feed the
    phase map so the regression gate watches the critical path shrinking
    (or the efficiency collapsing) exactly like a wall-clock phase —
    efficiency gates on the higher-is-better side
    (``repro.obs.regress.is_higher_better_phase``).
    """
    from repro import datasets
    from repro.hetero.parallel import ParallelEngine
    from repro.obs import span, tracing
    from repro.obs.critpath import analyze_collector

    g = datasets.load("OPF_3754", scale)
    sources = np.arange(min(g.n, 64), dtype=np.int64)
    half = sources.size // 2 or 1
    with tracing() as tr, span("bench.critpath", graph="OPF_3754"):
        with ParallelEngine(g, workers=2, chunk_size=16) as eng:
            eng.multi_source(sources[:half])
            eng.multi_source(sources[half:])
    result = analyze_collector(tr)
    top = max(result.path, key=lambda e: e["path_ns"]) if result.path else None
    return {
        "graph": {"name": "OPF_3754", "n": g.n, "m": g.m},
        "length_ns": int(result.total_ns),
        "parallel_efficiency": float(result.parallel_efficiency),
        "spans": int(result.span_count),
        "path_entries": len(result.path),
        "dispatches": len(result.dispatches),
        "stragglers": int(result.stragglers),
        "orphans": int(result.orphans),
        "heaviest": top["name"] if top else None,
    }


def bench_fig2(scale: float) -> list[dict]:
    from repro.bench import run_fig2

    rows = run_fig2(scale=scale, names=["nopoly", "OPF_3754"])
    return [
        {
            "name": r.name,
            "n": r.n,
            "m": r.m,
            "t_ours_s": r.t_ours,
            "t_baseline_s": r.t_baseline,
            "baseline": r.baseline,
            "speedup": r.speedup,
        }
        for r in rows
    ]


def bench_table2(scale: float) -> list[dict]:
    from repro.bench import run_table2

    rows = run_table2(scale=scale, names=["nopoly", "OPF_3754"])
    rows_out = [
        {
            "name": r.name,
            "n": r.n,
            "m": r.m,
            "f": r.f,
            "wall_with_ear_s": r.wall_with_ear,
            "wall_without_ear_s": r.wall_without_ear,
            "virtual_speedup_cpu_gpu": (
                r.seconds["sequential"][0] / r.seconds["cpu+gpu"][0]
                if r.seconds["cpu+gpu"][0]
                else float("inf")
            ),
        }
        for r in rows
    ]
    return rows_out


def _phases(baseline: dict) -> dict:
    """Flatten the section timings into the ledger/regress phase map.

    These names are the contract the regression gate compares across
    commits (``repro.obs.regress.extract_phases`` reproduces them from
    legacy un-stamped baselines).
    """
    rs = baseline["repeated_sssp"]
    pl = baseline["parallel"]
    phases = {
        "smoke.repeated_sssp.uncached": rs["uncached_per_source_s"],
        "smoke.repeated_sssp.cached": rs["cached_chunked_s"],
        "smoke.parallel.serial": pl["serial_s"],
        "smoke.parallel.parallel": pl["parallel_s"],
        "smoke.bulk_query.scalar": baseline["bulk_query"]["scalar_s"],
        "smoke.bulk_query.vectorized": baseline["bulk_query"]["vectorized_s"],
        "smoke.sampler.disabled": baseline["sampler"]["disabled_s"],
        "smoke.sampler.enabled": baseline["sampler"]["enabled_s"],
        # Critical-path phases keep their canonical (un-prefixed) names so
        # profile-run records and bench records gate against each other.
        "critpath.length_ns": float(baseline["critpath"]["length_ns"]),
        "critpath.parallel_efficiency": baseline["critpath"][
            "parallel_efficiency"
        ],
    }
    for row in baseline["fig2"]:
        phases[f"smoke.fig2.{row['name']}.ours"] = row["t_ours_s"]
        phases[f"smoke.fig2.{row['name']}.baseline"] = row["t_baseline_s"]
    for row in baseline["table2"]:
        phases[f"smoke.table2.{row['name']}.with_ear"] = row["wall_with_ear_s"]
        phases[f"smoke.table2.{row['name']}.without_ear"] = row["wall_without_ear_s"]
    return phases


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument(
        "--out", type=Path, default=ROOT / "BENCH_BASELINE.json"
    )
    parser.add_argument(
        "--ledger",
        type=Path,
        default=ROOT / "BENCH_LEDGER.jsonl",
        help="append-only JSONL run ledger (see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="skip the ledger append (baseline file only)",
    )
    args = parser.parse_args()

    from repro.obs.ledger import (
        SCHEMA_VERSION,
        Ledger,
        RunRecord,
        git_sha,
        host_fingerprint,
    )

    baseline = {
        # Self-describing stamp: a baseline read years later (or by the
        # regress gate on another host) identifies its commit and schema.
        "schema_version": SCHEMA_VERSION,
        "git_sha": git_sha(ROOT),
        "created_unix": time.time(),
        "host": host_fingerprint(),
        "scale": args.scale,
        "chunk_size": os.environ.get("REPRO_SSSP_CHUNK", "32 (default)"),
        "repeated_sssp": bench_repeated_sssp(args.scale),
        "parallel": bench_parallel(args.scale),
        "bulk_query": bench_bulk_query(args.scale),
        "sampler": bench_sampler_overhead(args.scale),
        "critpath": bench_critpath(args.scale),
        "fig2": bench_fig2(args.scale),
        "table2": bench_table2(args.scale),
    }
    baseline["phases"] = _phases(baseline)
    # Whole-run observability counters: cache efficacy, chunk dispatch
    # volume, parallel-backend activity (repro.obs.metrics snapshot).
    from repro.obs import snapshot
    from repro.sssp.engine import adjacency_cache

    info = adjacency_cache().info()
    baseline["obs"] = {
        "adjacency_cache": {
            "hits": info.hits,
            "misses": info.misses,
            "size": info.size,
            "maxsize": info.maxsize,
        },
        "counters": {
            k: v
            for k, v in snapshot().items()
            if not isinstance(v, dict) and v
        },
    }
    args.out.write_text(json.dumps(baseline, indent=2) + "\n")
    if not args.no_ledger:
        ledger = Ledger(args.ledger)
        ledger.append(
            RunRecord.new(
                kind="bench_smoke",
                phases=baseline["phases"],
                counters=baseline["obs"]["counters"],
                memory={"adjacency_cache": baseline["obs"]["adjacency_cache"]},
                meta={"scale": args.scale, "out": str(args.out), "scenario": "smoke"},
                root=ROOT,
            )
        )
        print(f"appended run record to {ledger.path}")
    rs = baseline["repeated_sssp"]
    pl = baseline["parallel"]
    print(f"wrote {args.out} (schema v{SCHEMA_VERSION}, "
          f"sha {(baseline['git_sha'] or 'unknown')[:12]})")
    cache = baseline["obs"]["adjacency_cache"]
    print(f"adjacency cache: {cache['hits']} hits / {cache['misses']} misses")
    print(
        f"repeated-sssp: uncached {rs['uncached_per_source_s']:.3f}s "
        f"vs cached+chunked {rs['cached_chunked_s']:.3f}s "
        f"({rs['speedup']:.1f}x)"
    )
    print(
        f"parallel apsp: serial {pl['serial_s']:.3f}s vs 2-proc "
        f"{pl['parallel_s']:.3f}s ({pl['speedup']:.2f}x on "
        f"{pl['host_cores']} core(s))"
    )
    bq = baseline["bulk_query"]
    print(
        f"bulk query: scalar {bq['scalar_s']:.3f}s vs vectorized "
        f"{bq['vectorized_s']:.4f}s ({bq['speedup']:.1f}x, "
        f"bit_identical={bq['bit_identical']})"
    )
    sp = baseline["sampler"]
    print(
        f"sampler overhead: off {sp['disabled_s']:.4f}s vs armed "
        f"{sp['enabled_s']:.4f}s at {sp['hz']:g} Hz "
        f"({sp['overhead_frac'] * 100:+.2f}%, {sp['samples']} samples)"
    )
    cp = baseline["critpath"]
    print(
        f"critical path: {cp['length_ns'] / 1e9:.3f}s over {cp['spans']} "
        f"span(s), efficiency {cp['parallel_efficiency']:.3f}, "
        f"{cp['stragglers']} straggler(s), heaviest {cp['heaviest']}"
    )


if __name__ == "__main__":
    main()
