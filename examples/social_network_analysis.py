#!/usr/bin/env python
"""Sparse social/AS network analysis on the Table-1 stand-ins.

Internet-topology graphs like as-22july06 are dominated by degree-2
"transit" nodes and decompose into many biconnected components — the
paper's headline case (77% of vertices removed, ~10x MCB speedup).  This
example loads the stand-in, shows its block structure, compares dense vs
oracle storage, and answers reachability/distance queries.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import datasets
from repro.apsp import DistanceOracle, memory_model
from repro.decomposition import BlockCutTree, biconnected_components
from repro.graph.stats import table1_row


def main() -> None:
    name = "as-22july06"
    g = datasets.load(name, scale=0.05)
    stats = table1_row(g, name)
    print(f"{name} stand-in: |V|={stats.n} |E|={stats.m} "
          f"#BCC={stats.n_bcc} degree-2={stats.degree2_pct:.0f}%")
    print(f"ear reduction would remove {stats.nodes_removed_pct:.1f}% of vertices "
          f"(paper: 77.6%)")

    bcc = biconnected_components(g)
    sizes = sorted((len(e) for e in bcc.component_edges), reverse=True)
    print(f"largest blocks (edges): {sizes[:5]}; "
          f"articulation points: {len(bcc.articulation_points)}")

    tree = BlockCutTree(g, bcc)
    print(f"block-cut forest: {tree.n_nodes} nodes in {tree.n_trees} tree(s)")

    mm = memory_model(g)
    mm_red = memory_model(g, reduced=True)
    print(f"\nAPSP storage: dense {mm.max_mb:.1f} MB | per-BCC tables "
          f"{mm.ours_mb:.1f} MB | ear-reduced tables {mm_red.ours_mb:.1f} MB")

    oracle = DistanceOracle(g)
    rng = np.random.default_rng(1)
    print("\nsample AS-path lengths:")
    for u, v in rng.integers(0, g.n, size=(5, 2)):
        d = oracle.query(int(u), int(v))
        hops = "unreachable" if np.isinf(d) else f"{d:.3f}"
        bracket = ""
        try:
            b = tree.boundary_aps(int(u), int(v))
            if b:
                bracket = f" (every path crosses transit nodes {b[0]} and {b[1]})"
        except (ValueError, KeyError):
            pass
        print(f"  d({u:4d}, {v:4d}) = {hops}{bracket}")


if __name__ == "__main__":
    main()
