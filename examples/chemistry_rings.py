#!/usr/bin/env python
"""Ring perception in molecules via minimum cycle basis.

The MCB of a molecular graph is chemistry's SSSR (smallest set of
smallest rings) — the paper cites exactly this application [14].  This
example perceives the rings of a few classic molecules (hydrogens
omitted, as usual for ring perception) and shows that the ear-reduced
pipeline returns the same rings while solving a much smaller graph:
chains of CH₂ groups and other divalent atoms vanish into single edges.

Run:  python examples/chemistry_rings.py
"""

from repro.decomposition import reduce_graph
from repro.graph import CSRGraph
from repro.mcb import minimum_cycle_basis, verify_cycle_basis

# Heavy-atom skeletons as edge lists (indices are atoms).
MOLECULES = {
    # benzene: one aromatic ring
    "benzene": (6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
    # naphthalene: two fused six-rings
    "naphthalene": (
        10,
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0),
         (4, 6), (6, 7), (7, 8), (8, 9), (9, 5)],
    ),
    # caffeine heavy atoms: fused 6+5 ring system (purine core) with
    # the three N-methyls and two carbonyl oxygens as substituents
    "caffeine": (
        14,
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0),   # six-ring
         (5, 6), (6, 7), (7, 8), (8, 4),                    # fused five-ring
         (0, 9), (2, 10), (6, 11), (1, 12), (3, 13)],       # substituents
    ),
    # cyclohexane with a long alkyl chain (degree-2 heavy atoms)
    "hexylcyclohexane": (
        12,
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0),
         (0, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)],
    ),
}


def main() -> None:
    for name, (n, edges) in MOLECULES.items():
        g = CSRGraph.from_edges(n, edges)
        red = reduce_graph(g)
        rings = minimum_cycle_basis(g)
        rep = verify_cycle_basis(g, rings)
        assert rep.ok
        sizes = sorted(len(r) for r in rings)
        print(f"{name:18s} atoms={n:3d} bonds={g.m:3d} "
              f"reduced={red.graph.n:2d} atoms | "
              f"rings={len(rings)} sizes={sizes}")
        for ring in rings:
            atoms = sorted(
                {int(g.edge_u[e]) for e in ring.edge_ids}
                | {int(g.edge_v[e]) for e in ring.edge_ids}
            )
            print(f"    ring of {len(ring)} bonds over atoms {atoms}")

    # Sanity anchors chemists expect:
    n, edges = MOLECULES["naphthalene"]
    rings = minimum_cycle_basis(CSRGraph.from_edges(n, edges))
    assert sorted(len(r) for r in rings) == [6, 6], "naphthalene = two six-rings"
    n, edges = MOLECULES["caffeine"]
    rings = minimum_cycle_basis(CSRGraph.from_edges(n, edges))
    assert sorted(len(r) for r in rings) == [5, 6], "caffeine = fused 5+6"
    print("\nSSSR checks passed: naphthalene [6,6], caffeine [5,6]")


if __name__ == "__main__":
    main()
