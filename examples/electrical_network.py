#!/usr/bin/env python
"""Mesh-current analysis of a resistor network via minimum cycle basis.

The paper cites electric networks [11] as an MCB application: Kirchhoff's
voltage law gives one independent equation per basis cycle, and using the
*minimum* cycle basis keeps the mesh equations as short (sparse) as
possible.  This example builds a resistor grid with one voltage source,
takes the basis cycles from ``repro.mcb``, solves the mesh-current system
with numpy, and cross-checks the resulting node potentials against the
classical node-voltage (graph Laplacian) solution.

Run:  python examples/electrical_network.py
"""

import numpy as np

from repro.graph import CSRGraph, grid_graph, randomize_weights
from repro.mcb import minimum_cycle_basis, verify_cycle_basis


def oriented_cycle_edges(g: CSRGraph, cycle) -> list[tuple[int, int]]:
    """``(edge id, ±1)`` walking the cycle in a consistent direction.

    The sign is +1 when the walk traverses the edge from its canonical
    ``edge_u`` endpoint to ``edge_v``.
    """
    seq = cycle.vertex_sequence(g)
    eids = set(int(e) for e in cycle.edge_ids)
    out = []
    for a, b in zip(seq, seq[1:] + seq[:1]):
        for e in eids:
            u, v = g.edge_endpoints(e)
            if {u, v} == {a, b}:
                out.append((e, 1 if (u, v) == (a, b) else -1))
                eids.remove(e)
                break
    return out


def solve_by_mesh_currents(g, resist, source_edge, emf):
    """Loop analysis: one unknown per MCB cycle."""
    basis = minimum_cycle_basis(g.with_weights(resist))
    assert verify_cycle_basis(g.with_weights(resist), basis).ok
    k = len(basis)
    orientations = [oriented_cycle_edges(g, c) for c in basis]
    # edge -> list of (cycle index, sign)
    incidence: dict[int, list[tuple[int, int]]] = {}
    for ci, oriented in enumerate(orientations):
        for e, s in oriented:
            incidence.setdefault(e, []).append((ci, s))
    # KVL: sum over edges of R_e * (net mesh current through e) = emf terms
    A = np.zeros((k, k))
    b = np.zeros(k)
    for e, members in incidence.items():
        for ci, si in members:
            for cj, sj in members:
                A[ci, cj] += resist[e] * si * sj
            if e == source_edge:
                b[ci] += emf * si
    mesh = np.linalg.solve(A, b)
    # branch currents
    branch = np.zeros(g.m)
    for e, members in incidence.items():
        branch[e] = sum(mesh[ci] * si for ci, si in members)
    return basis, branch


def solve_by_node_potentials(g, resist, source_edge, emf):
    """Classical nodal analysis with an ideal EMF inserted on one edge."""
    n = g.n
    G = np.zeros((n, n))  # conductance Laplacian
    inj = np.zeros(n)
    for e in range(g.m):
        u, v = g.edge_endpoints(e)
        c = 1.0 / resist[e]
        G[u, u] += c
        G[v, v] += c
        G[u, v] -= c
        G[v, u] -= c
        if e == source_edge:
            # EMF in series with R_e: equivalent current injection
            inj[v] += emf * c
            inj[u] -= emf * c
    # ground node 0
    pot = np.zeros(n)
    pot[1:] = np.linalg.solve(G[1:, 1:], inj[1:])
    # branch currents from potentials (+ source term on the EMF edge)
    branch = np.zeros(g.m)
    for e in range(g.m):
        u, v = g.edge_endpoints(e)
        drive = emf if e == source_edge else 0.0
        branch[e] = (pot[u] - pot[v] + drive) / resist[e]
    return branch


def main() -> None:
    g = grid_graph(4, 5)
    rng = np.random.default_rng(3)
    resist = rng.uniform(1.0, 10.0, g.m)  # ohms
    source_edge = 0
    emf = 12.0  # volts

    basis, mesh_branch = solve_by_mesh_currents(g, resist, source_edge, emf)
    node_branch = solve_by_node_potentials(g, resist, source_edge, emf)

    print(f"resistor grid: {g.n} nodes, {g.m} branches, "
          f"{len(basis)} independent loops (= m - n + 1 = {g.m - g.n + 1})")
    print(f"loop sizes: {sorted(len(c) for c in basis)} "
          f"(MCB keeps every mesh equation minimal)")
    err = np.max(np.abs(mesh_branch - node_branch))
    print(f"mesh-current vs node-potential branch currents: "
          f"max |Δ| = {err:.2e} A")
    assert err < 1e-9
    total_in = mesh_branch[source_edge]
    print(f"source branch current: {total_in:.4f} A at {emf} V "
          f"(network input resistance {emf / total_in:.3f} Ω)")
    # Kirchhoff's current law at every node, as a final sanity check.
    kcl = np.zeros(g.n)
    for e in range(g.m):
        u, v = g.edge_endpoints(e)
        kcl[u] -= mesh_branch[e]
        kcl[v] += mesh_branch[e]
    assert np.max(np.abs(kcl)) < 1e-9
    print("KCL satisfied at every node — loop analysis agrees with nodal analysis")


if __name__ == "__main__":
    main()
