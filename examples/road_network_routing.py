#!/usr/bin/env python
"""Road-network routing: planar APSP with ear decomposition.

Road networks are near-planar and full of degree-2 vertices (shape points
along road segments) — exactly the structure Section 2 exploits.  This
example builds a synthetic road network (Delaunay "intersections" with
subdivided "road geometry"), compares three exact APSP pipelines, and
runs point-to-point queries through the space-efficient oracle.

Run:  python examples/road_network_routing.py
"""

import time

import numpy as np

from repro.apsp import DistanceOracle, bcc_apsp, ear_apsp_full, partition_apsp
from repro.apsp.ear_apsp import EarAPSPReport
from repro.bench import mteps
from repro.graph import delaunay_graph, subdivide_edges


def build_road_network(n_intersections: int = 500, seed: int = 42):
    """Delaunay intersections + degree-2 shape points along segments."""
    skeleton = delaunay_graph(n_intersections, seed=seed)
    # Two thirds of road segments get 1-4 shape points each.
    return subdivide_edges(skeleton, 0.66, seed=seed, chain_length=(1, 4))


def main() -> None:
    g = build_road_network()
    deg2 = int((g.degree == 2).sum())
    print(f"road network: {g.n} nodes ({deg2} shape points), {g.m} segments")

    results = {}
    timings = {}

    rep = EarAPSPReport()
    t0 = time.perf_counter()
    results["ear (ours)"] = ear_apsp_full(g, report=rep)
    timings["ear (ours)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    results["bcc (Banerjee)"] = bcc_apsp(g)
    timings["bcc (Banerjee)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    results["partition (Djidjev)"] = partition_apsp(g, k=6, seed=1)
    timings["partition (Djidjev)"] = time.perf_counter() - t0

    base = results["ear (ours)"]
    for name, mat in results.items():
        agree = np.allclose(
            np.nan_to_num(mat, posinf=-1), np.nan_to_num(base, posinf=-1), atol=1e-8
        )
        print(
            f"{name:22s} {timings[name]:7.3f}s  "
            f"{mteps(g.n, g.m, timings[name]):9.1f} MTEPS  exact={agree}"
        )
    print(
        f"\near pipeline: {rep.n} -> {rep.n_reduced} routing nodes; phases "
        f"pre={rep.t_preprocess * 1e3:.1f}ms "
        f"dijkstra={rep.t_process * 1e3:.1f}ms "
        f"extend={rep.t_postprocess * 1e3:.1f}ms"
    )

    # Point-to-point queries without the dense matrix.
    oracle = DistanceOracle(g)
    rng = np.random.default_rng(0)
    queries = rng.integers(0, g.n, size=(5, 2))
    print("\nsample routes (oracle):")
    for u, v in queries:
        print(f"  d({u:4d}, {v:4d}) = {oracle.query(int(u), int(v)):8.4f}")
    from repro.apsp import memory_model

    red_model = memory_model(g, reduced=True)
    print(
        f"oracle storage: {oracle.memory_bytes() / 2**20:.2f} MB "
        f"(reduced-table variant would use {red_model.ours_mb:.2f} MB) "
        f"vs dense {oracle.full_matrix_bytes() / 2**20:.2f} MB"
    )


if __name__ == "__main__":
    main()
