#!/usr/bin/env python
"""Quickstart: ear decomposition, reduced-graph APSP, and MCB in 60 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apsp import DistanceOracle, ear_apsp_full
from repro.decomposition import ear_decomposition, reduce_graph
from repro.graph import random_biconnected_graph, randomize_weights, subdivide_edges
from repro.mcb import minimum_cycle_basis, verify_cycle_basis


def main() -> None:
    # A weighted biconnected graph with long degree-2 chains — the shape
    # the paper's technique is built for.
    core = random_biconnected_graph(40, 25, seed=7)
    g = subdivide_edges(randomize_weights(core, seed=7), 0.6, seed=7, chain_length=(2, 4))
    print(f"graph: {g.n} vertices, {g.m} edges, "
          f"{int((g.degree == 2).sum())} of degree 2")

    # 1. Ear decomposition (Section 2.1.1): the graph partitions into a
    #    first cycle plus open ears.
    ears = ear_decomposition(g)
    print(f"ear decomposition: {ears.count} ears, open={ears.is_open}")

    # 2. Degree-2 chain contraction -> the reduced graph G^r.
    red = reduce_graph(g)
    print(f"reduced graph: {g.n} -> {red.graph.n} vertices "
          f"({red.removal_fraction:.0%} removed)")

    # 3. All-pairs shortest paths via Algorithm 1 (reduce / Dijkstra on
    #    G^r / closed-form extension) — exact.
    dist = ear_apsp_full(g)
    print(f"APSP: diameter = {dist[np.isfinite(dist)].max():.3f}")

    # 4. Space-efficient oracle: per-component tables + AP table only.
    oracle = DistanceOracle(g)
    u, v = 0, g.n - 1
    assert abs(oracle.query(u, v) - dist[u, v]) < 1e-9
    print(f"oracle: d({u}, {v}) = {oracle.query(u, v):.3f} using "
          f"{oracle.memory_bytes() / 1024:.1f} KiB "
          f"(dense table would be {oracle.full_matrix_bytes() / 1024:.1f} KiB)")

    # 5. Minimum cycle basis through the same reduction (Lemma 3.1).
    basis = minimum_cycle_basis(g)
    report = verify_cycle_basis(g, basis)
    assert report.ok
    print(f"MCB: {report.dimension} cycles, total weight {report.total_weight:.3f} "
          f"(verified independent)")


if __name__ == "__main__":
    main()
