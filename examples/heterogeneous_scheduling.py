#!/usr/bin/env python
"""The heterogeneous platform end to end: MCB on four implementations.

Reproduces one row of the paper's Table 2 on a synthetic graph: run the
ear-reduced Mehlhorn–Michail pipeline once (recording its kernel work
trace), then replay the trace on the Sequential / Multicore / GPU /
CPU+GPU platform models and report virtual times, device utilisation, and
the ear-decomposition ablation.

Run:  python examples/heterogeneous_scheduling.py
"""

from repro.graph import random_biconnected_graph, randomize_weights, subdivide_edges
from repro.hetero import Platform, run_mcb_on_platforms, simulate_trace
from repro.mcb import verify_cycle_basis


def main() -> None:
    core = random_biconnected_graph(600, 420, seed=5)
    g = subdivide_edges(randomize_weights(core, seed=5), 0.6, seed=5, chain_length=(2, 4))
    print(f"graph: {g.n} vertices, {g.m} edges, "
          f"cycle-space dimension {g.cycle_space_dimension()}")

    res_ear = run_mcb_on_platforms(g, use_ear=True)
    res_raw = run_mcb_on_platforms(g, use_ear=False)
    assert verify_cycle_basis(g, res_ear.cycles).ok

    print(f"\nMCB: {len(res_ear.cycles)} cycles, weight {res_ear.total_weight:.2f}")
    print(f"\n{'implementation':12s} {'w/ ear':>12s} {'w/o ear':>12s} {'ear gain':>9s}")
    for name in ("sequential", "multicore", "gpu", "cpu+gpu"):
        w = res_ear.timings[name].total_time
        wo = res_raw.timings[name].total_time
        print(f"{name:12s} {w * 1e3:10.2f}ms {wo * 1e3:10.2f}ms {wo / w:8.2f}x")

    sp = res_ear.speedups_vs_sequential()
    print("\nspeedup over sequential (with ears): "
          + ", ".join(f"{k}={v:.2f}x" for k, v in sp.items() if k != "sequential"))

    het = res_ear.timings["cpu+gpu"]
    total_busy = sum(het.device_busy.values())
    print("device share of heterogeneous busy time: "
          + ", ".join(f"{k}={v / total_busy:.0%}" for k, v in het.device_busy.items()))

    # Per-stage view on the sequential platform (the paper's Section 3.5
    # breakdown: labels dominate).
    seq = simulate_trace(res_ear.trace, Platform.sequential())
    proc = {k: v for k, v in seq.stage_times.items() if k in ("labels", "scan", "update")}
    tot = sum(proc.values())
    print("processing-time shares: "
          + ", ".join(f"{k}={v / tot:.0%}" for k, v in proc.items()))


if __name__ == "__main__":
    main()
